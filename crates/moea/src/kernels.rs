//! Flat-buffer selection kernels: ENS non-dominated sort, cached-distance
//! SPEA2 density/truncation, and index-based crowding — the hot loops of
//! every MOEA generation, rewritten over [`ObjectiveMatrix`] /
//! [`DistanceMatrix`] with the naive algorithms retained as test oracles.
//!
//! # Bit-identity contract
//!
//! Every kernel here returns *exactly* what its naive predecessor
//! returned — same fronts in the same order, same survivor sets, same
//! density values to the bit — so the repo's determinism, resume and
//! cache tests double as correctness oracles. The two nontrivial
//! arguments:
//!
//! **ENS ≡ Deb.** [`ens_non_dominated_sort`] processes points in a
//! topological order of constrained dominance — ascending
//! `(violation, objectives…, index)` with zeros normalized — and inserts
//! each point into the first front containing no dominator. Because
//! constrained dominance is a strict partial order (transitive: a
//! dominator of a dominator dominates), a point's dominators occupy a
//! contiguous rank prefix `0..r`, so "first front with no dominator" is
//! exactly Deb's `1 + max dominator rank`: *membership* matches the
//! peeling sort. *Order within a front* is then reconstructed to match
//! the peeling loop exactly: front 0 is ascending index; front k lists
//! its members in ascending `(position in front k−1 of the member's last
//! front-(k−1) dominator, index)` — which is precisely when the naive
//! loop's dominance counter reaches zero. Inputs with NaN objectives or
//! non-finite/negative violations (possible under degraded-mode
//! analyses) break the topological-key property, so the dispatcher falls
//! back to the naive sort for them — same answer, slower path.
//!
//! **Cached truncation ≡ per-round truncation.** SPEA2 truncation drops,
//! each round, the member whose ascending distance vector to the
//! survivors is lexicographically smallest (first occurrence on ties).
//! [`spea2_truncate`] builds each member's sorted `(distance, slot)`
//! vector once and thereafter only *marks* removed members dead: each
//! row keeps a cursor past its dead prefix, and the lexicographic
//! comparison skips dead entries on the fly. Equal keys under `total_cmp`
//! are bit-identical, so whether a tied occurrence is physically removed
//! (the old eager scheme), tombstoned, or compacted away, the *live*
//! value sequence every comparison sees is the same — and all live rows
//! always have equal length (every row loses exactly the removed
//! members), so the length tie-break of [`spea2_truncate_naive`]'s
//! `lex_less` (equal sequences → not-less → first occurrence wins) is
//! reproduced by returning "not less" on simultaneous exhaustion.
//! Member bookkeeping replicates the naive routine's `swap_remove`, so
//! the scan order — and therefore every tie-break — evolves identically.
//! Rows are physically compacted every `max(n/4, 32)` removals to keep
//! the dead-entry skip cost bounded.
//!
//! The dominance checks on the hot paths (ENS insertion/reconstruction,
//! SPEA2 strength, Pareto front extraction) use the blocked kernels
//! ([`crate::pareto::dominates_blocked`]) — boolean-identical to the
//! scalar forms on every input including NaN, just branch-reduced for
//! autovectorization. The naive Deb sort keeps the scalar checks as the
//! independent oracle.

use std::cell::RefCell;
use std::cmp::Ordering;

use crate::matrix::{DistanceMatrix, ObjectiveMatrix};
use crate::pareto::{constrained_dominates, constrained_dominates_blocked, dominates_blocked};

/// Reusable per-thread buffers for one selection pass: the flat objective
/// matrix, the violation vector and the SPEA2 distance matrix. Selection
/// always runs on the driving thread (workers only evaluate), so one
/// thread-local set serves a whole run without allocation churn.
#[derive(Debug, Default)]
pub struct SelectionScratch {
    /// Flat objective rows of the population under selection.
    pub objectives: ObjectiveMatrix,
    /// Parallel constraint violations.
    pub violations: Vec<f64>,
    /// Pairwise squared distances (filled by [`spea2_fitness`]).
    pub distances: DistanceMatrix,
}

/// Per-generation selection cost split, in microseconds — what the
/// generation trace reports as `sort_us=`/`truncate_us=`/`dist_us=`
/// alongside the total `selection_us=`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionSplit {
    /// Total selection wall time (superset of the three parts below plus
    /// bookkeeping).
    pub total_us: u64,
    /// Fitness/ranking time (SPEA2 fitness, NSGA-II rank-and-crowd).
    pub sort_us: u64,
    /// Environmental truncation time.
    pub truncate_us: u64,
    /// Distance-matrix build/update/compact time (zero for NSGA-II).
    pub dist_us: u64,
}

thread_local! {
    static SCRATCH: RefCell<SelectionScratch> = RefCell::new(SelectionScratch::default());
}

/// Runs `f` with this thread's [`SelectionScratch`]. Buffers keep their
/// capacity between calls, so per-generation selection reuses one
/// allocation set.
///
/// Not reentrant: nesting `with_scratch` inside `f` panics (the scratch
/// is a single `RefCell`).
pub fn with_scratch<R>(f: impl FnOnce(&mut SelectionScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// `-0.0` → `+0.0` so the sort key treats them as the one value they
/// compare equal to; every other non-NaN value is unchanged.
#[inline]
fn norm(x: f64) -> f64 {
    x + 0.0
}

/// The topological sort key: ascending `(violation, objectives…)` with
/// normalized zeros. If `a` constrained-dominates `b` then `key(a) <
/// key(b)` (see the module docs) — provided no NaN and no negative
/// violation, which the dispatcher guarantees.
fn key_cmp(va: f64, a: &[f64], vb: f64, b: &[f64]) -> Ordering {
    norm(va).total_cmp(&norm(vb)).then_with(|| {
        for (x, y) in a.iter().zip(b) {
            let c = norm(*x).total_cmp(&norm(*y));
            if c != Ordering::Equal {
                return c;
            }
        }
        Ordering::Equal
    })
}

/// The naive Deb fast non-dominated sort on a flat matrix — `O(MN²)`
/// dominance checks. Retained as the oracle for
/// [`ens_non_dominated_sort`] (property-tested equal) and as its fallback
/// for degraded inputs.
pub fn deb_non_dominated_sort(points: &ObjectiveMatrix, violations: &[f64]) -> Vec<Vec<usize>> {
    assert_eq!(points.rows(), violations.len(), "length mismatch");
    let n = points.rows();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // p dominates these
    let mut counts = vec![0usize; n]; // how many dominate p
    for i in 0..n {
        for j in (i + 1)..n {
            if constrained_dominates(points.row(i), violations[i], points.row(j), violations[j]) {
                dominated_by[i].push(j);
                counts[j] += 1;
            } else if constrained_dominates(
                points.row(j),
                violations[j],
                points.row(i),
                violations[i],
            ) {
                dominated_by[j].push(i);
                counts[i] += 1;
            }
        }
    }
    let mut fronts = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| counts[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &p in &current {
            for &q in &dominated_by[p] {
                counts[q] -= 1;
                if counts[q] == 0 {
                    next.push(q);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// ENS-SS non-dominated sort: sort by the topological key, insert each
/// point into the first existing front that contains no dominator of it,
/// then reconstruct the exact front order of [`deb_non_dominated_sort`]
/// (see the module docs for the equivalence argument). Falls back to the
/// naive sort when any objective is NaN or any violation is not a
/// non-negative number.
///
/// # Panics
///
/// Panics if `points` and `violations` differ in length.
pub fn ens_non_dominated_sort(points: &ObjectiveMatrix, violations: &[f64]) -> Vec<Vec<usize>> {
    assert_eq!(points.rows(), violations.len(), "length mismatch");
    if points.any_nan() || violations.iter().any(|v| v.is_nan() || *v < 0.0) {
        return deb_non_dominated_sort(points, violations);
    }
    let n = points.rows();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        key_cmp(violations[a], points.row(a), violations[b], points.row(b)).then(a.cmp(&b))
    });

    // Sequential-search insertion. All dominators of a point precede it
    // in `order`, so fronts only ever receive already-ranked dominators.
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    for &p in &order {
        let rank = fronts.iter().position(|front| {
            // Recently inserted members have the closest keys and are the
            // likeliest dominators — scan them first.
            !front.iter().rev().any(|&q| {
                constrained_dominates_blocked(
                    points.row(q),
                    violations[q],
                    points.row(p),
                    violations[p],
                )
            })
        });
        match rank {
            Some(r) => fronts[r].push(p),
            None => fronts.push(vec![p]),
        }
    }

    // Reconstruct the naive peeling loop's intra-front order.
    let mut deb: Vec<Vec<usize>> = Vec::with_capacity(fronts.len());
    let mut first = std::mem::take(&mut fronts[0]);
    first.sort_unstable();
    deb.push(first);
    for k in 1..fronts.len() {
        let prev = &deb[k - 1];
        let mut keyed: Vec<(usize, usize)> = fronts[k]
            .iter()
            .map(|&q| {
                let last = prev
                    .iter()
                    .rposition(|&p| {
                        constrained_dominates_blocked(
                            points.row(p),
                            violations[p],
                            points.row(q),
                            violations[q],
                        )
                    })
                    .expect("a rank-k point has a rank-(k-1) dominator");
                (last, q)
            })
            .collect();
        keyed.sort_unstable();
        deb.push(keyed.into_iter().map(|(_, q)| q).collect());
    }
    deb
}

/// Indices of the non-dominated rows of `points` — the flat-buffer
/// `non_dominated_indices`, same first-duplicate-wins semantics.
pub fn non_dominated_matrix(points: &ObjectiveMatrix) -> Vec<usize> {
    let n = points.rows();
    let mut keep = Vec::new();
    'outer: for i in 0..n {
        let p = points.row(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            let q = points.row(j);
            if dominates_blocked(q, p) || (q == p && j < i) {
                continue 'outer;
            }
        }
        keep.push(i);
    }
    keep
}

/// Crowding distance of the front `members` (row indices into `points`),
/// in `members` order — equal to materializing the rows and running the
/// legacy `crowding_distance`, without the copies.
pub fn crowding_distance_indexed(points: &ObjectiveMatrix, members: &[usize]) -> Vec<f64> {
    let n = members.len();
    let mut dist = vec![0.0f64; n];
    if n == 0 {
        return dist;
    }
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let m = points.cols();
    let at = |w: usize, obj: usize| points.row(members[w])[obj];
    // `order` persists across objectives exactly like the legacy sort
    // (each stable sort starts from the previous objective's order).
    let mut order: Vec<usize> = (0..n).collect();
    for obj in 0..m {
        order.sort_by(|&a, &b| {
            at(a, obj)
                .partial_cmp(&at(b, obj))
                .unwrap_or(Ordering::Equal)
        });
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let span = at(order[n - 1], obj) - at(order[0], obj);
        if span <= 0.0 {
            continue;
        }
        for w in 1..(n - 1) {
            let prev = at(order[w - 1], obj);
            let next = at(order[w + 1], obj);
            dist[order[w]] += (next - prev) / span;
        }
    }
    dist
}

/// SPEA2 fitness `F(i) = R(i) + D(i)` on the flat matrix, filling `dist`
/// (reused across generations) as a side effect so environmental
/// selection can truncate on cached distances. The k-th-nearest density
/// uses `select_nth_unstable_by` on a row copy instead of a full sort —
/// the k-th order statistic under the `total_cmp` total order is the same
/// value either way.
pub fn spea2_fitness(
    points: &ObjectiveMatrix,
    violations: &[f64],
    dist: &mut DistanceMatrix,
) -> Vec<f64> {
    dist.refill(points);
    spea2_fitness_prefilled(points, violations, dist)
}

/// [`spea2_fitness`] on an already-filled distance matrix — the
/// incremental entry point: callers that refreshed `dist` via
/// [`DistanceMatrix::refill_with_tail`] (or any other bit-identical
/// route) skip the full O(N²·M) rebuild.
///
/// # Panics
///
/// Panics if `points`, `violations` and `dist` disagree on the
/// population size.
pub fn spea2_fitness_prefilled(
    points: &ObjectiveMatrix,
    violations: &[f64],
    dist: &DistanceMatrix,
) -> Vec<f64> {
    assert_eq!(points.rows(), violations.len(), "length mismatch");
    let n = points.rows();
    assert_eq!(dist.len(), n, "distance matrix size mismatch");
    // Strength: how many others each individual dominates.
    let mut strength = vec![0usize; n];
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // dominators of i
    for i in 0..n {
        for j in 0..n {
            if i != j
                && constrained_dominates_blocked(
                    points.row(i),
                    violations[i],
                    points.row(j),
                    violations[j],
                )
            {
                strength[i] += 1;
                dominated_by[j].push(i);
            }
        }
    }
    // Raw fitness: sum of the strengths of one's dominators.
    let raw: Vec<f64> = (0..n)
        .map(|i| dominated_by[i].iter().map(|&d| strength[d] as f64).sum())
        .collect();
    // Density: 1 / (σ_k + 2) with k = √n. A distance-matrix row includes
    // the zero self-distance — a minimum — so the k-th nearest *other*
    // point is the row's k-th order statistic.
    let k = (n as f64).sqrt() as usize;
    let mut scratch: Vec<f64> = Vec::with_capacity(n);
    let density: Vec<f64> = (0..n)
        .map(|i| {
            let sigma_k = if n <= 1 {
                0.0
            } else {
                scratch.clear();
                scratch.extend_from_slice(dist.row(i));
                let (_, kth, _) = scratch.select_nth_unstable_by(k, f64::total_cmp);
                kth.sqrt()
            };
            1.0 / (sigma_k + 2.0)
        })
        .collect();
    raw.iter().zip(&density).map(|(r, d)| r + d).collect()
}

/// Lexicographic "strictly less" over `total_cmp` — the tie-break key of
/// SPEA2 truncation, shared by the cached and naive routines so the two
/// stay comparison-for-comparison identical (and NaN-deterministic).
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    a.len() < b.len()
}

/// One member's sorted neighbour state in the lazy truncation: entries
/// are ascending `(distance, original slot)` pairs over the *initial*
/// member set; `cursor` skips the row's known-dead prefix.
struct NeighborRow {
    entries: Vec<(f64, u32)>,
    cursor: usize,
}

/// SPEA2 archive truncation on cached distances: repeatedly drop the
/// member whose ascending distance vector to the remaining members is
/// lexicographically smallest, maintaining each member's sorted
/// neighbour state across removal rounds with lazy invalidation — a
/// removal only flips an `alive` bit, and comparisons skip dead entries
/// on the fly — instead of physically deleting one entry from every
/// survivor's vector per round. Rows are compacted (dead entries
/// dropped) every `max(n/4, 32)` removals to bound the skip cost.
///
/// `members` are distinct row indices of the population `dist` was built
/// over; the returned survivors replicate [`spea2_truncate_naive`]'s
/// `swap_remove` ordering exactly (see the module docs for the
/// tie-break argument).
pub fn spea2_truncate(dist: &DistanceMatrix, mut members: Vec<usize>, target: usize) -> Vec<usize> {
    if members.len() <= target {
        return members;
    }
    let n0 = members.len();
    let mut alive = vec![true; n0];
    let mut rows: Vec<NeighborRow> = (0..n0)
        .map(|s| {
            let i = members[s];
            let mut entries: Vec<(f64, u32)> = (0..n0)
                .filter(|&q| q != s)
                .map(|q| (dist.get(i, members[q]), q as u32))
                .collect();
            entries.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            NeighborRow { entries, cursor: 0 }
        })
        .collect();
    // `slots[pos]` is the original slot of the member now at `pos` —
    // kept in lockstep with `members` through every `swap_remove`.
    let mut slots: Vec<u32> = (0..n0 as u32).collect();
    let compact_every = (n0 / 4).max(32);
    let mut dead = 0usize;
    while members.len() > target {
        for row in &mut rows {
            while row
                .entries
                .get(row.cursor)
                .is_some_and(|&(_, q)| !alive[q as usize])
            {
                row.cursor += 1;
            }
        }
        let mut worst_pos = 0usize;
        for pos in 1..members.len() {
            if lex_less_live(&rows[pos], &rows[worst_pos], &alive) {
                worst_pos = pos;
            }
        }
        alive[slots[worst_pos] as usize] = false;
        dead += 1;
        members.swap_remove(worst_pos);
        rows.swap_remove(worst_pos);
        slots.swap_remove(worst_pos);
        if dead >= compact_every && members.len() > target {
            for row in &mut rows {
                row.entries.retain(|&(_, q)| alive[q as usize]);
                row.cursor = 0;
            }
            dead = 0;
        }
    }
    members
}

/// Lexicographic "strictly less" over the *live* entries of two neighbour
/// rows — [`lex_less`] with dead entries skipped on the fly. Both rows
/// always hold the same number of live entries (each lost exactly the
/// removed members), so simultaneous exhaustion is the only way the walk
/// ends, and it returns `false` exactly like `lex_less` on equal-length
/// equal sequences.
fn lex_less_live(a: &NeighborRow, b: &NeighborRow, alive: &[bool]) -> bool {
    let mut ia = a.cursor;
    let mut ib = b.cursor;
    loop {
        while a.entries.get(ia).is_some_and(|&(_, q)| !alive[q as usize]) {
            ia += 1;
        }
        while b.entries.get(ib).is_some_and(|&(_, q)| !alive[q as usize]) {
            ib += 1;
        }
        match (a.entries.get(ia), b.entries.get(ib)) {
            (None, None) => return false,
            (None, Some(_)) => return true,
            (Some(_), None) => return false,
            (Some(&(da, _)), Some(&(db, _))) => match da.total_cmp(&db) {
                Ordering::Less => return true,
                Ordering::Greater => return false,
                Ordering::Equal => {
                    ia += 1;
                    ib += 1;
                }
            },
        }
    }
}

/// The per-round truncation — the oracle for [`spea2_truncate`]: each
/// round re-materializes and re-sorts every member's distance vector.
pub fn spea2_truncate_naive(
    dist: &DistanceMatrix,
    mut members: Vec<usize>,
    target: usize,
) -> Vec<usize> {
    while members.len() > target {
        let mut worst_pos = 0usize;
        let mut worst_key: Vec<f64> = Vec::new();
        for (pos, &i) in members.iter().enumerate() {
            let mut dists: Vec<f64> = members
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| dist.get(i, j))
                .collect();
            dists.sort_unstable_by(f64::total_cmp);
            if pos == 0 || lex_less(&dists, &worst_key) {
                worst_key = dists;
                worst_pos = pos;
            }
        }
        members.swap_remove(worst_pos);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> ObjectiveMatrix {
        ObjectiveMatrix::from_rows(rows)
    }

    #[test]
    fn ens_matches_deb_on_layered_cloud() {
        let pts = m(&[
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![1.0, 2.5],
            vec![2.0, 2.0], // duplicate of index 1
            vec![0.5, 3.5],
        ]);
        let v = vec![0.0; 6];
        assert_eq!(
            ens_non_dominated_sort(&pts, &v),
            deb_non_dominated_sort(&pts, &v)
        );
    }

    #[test]
    fn ens_matches_deb_with_constraints() {
        let pts = m(&[
            vec![0.0, 0.0],
            vec![5.0, 5.0],
            vec![1.0, 1.0],
            vec![2.0, 0.5],
        ]);
        let v = vec![1.0, 0.0, 0.5, 0.5];
        assert_eq!(
            ens_non_dominated_sort(&pts, &v),
            deb_non_dominated_sort(&pts, &v)
        );
    }

    #[test]
    fn ens_matches_deb_with_negative_zero() {
        // −0.0 and +0.0 compare equal for dominance but differ under
        // total_cmp: the key normalization keeps the topological order.
        let pts = m(&[
            vec![0.0, 1.0],
            vec![-0.0, 2.0],
            vec![-0.0, 1.0],
            vec![0.0, 2.0],
        ]);
        let v = vec![0.0, 0.0, 0.0, 0.0];
        assert_eq!(
            ens_non_dominated_sort(&pts, &v),
            deb_non_dominated_sort(&pts, &v)
        );
    }

    #[test]
    fn ens_falls_back_on_nan_and_negative_violation() {
        let pts = m(&[vec![1.0, f64::NAN], vec![2.0, 1.0], vec![0.5, 0.5]]);
        let v = vec![0.0; 3];
        assert_eq!(
            ens_non_dominated_sort(&pts, &v),
            deb_non_dominated_sort(&pts, &v)
        );
        let pts = m(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let v = vec![-1.0, 0.0];
        assert_eq!(
            ens_non_dominated_sort(&pts, &v),
            deb_non_dominated_sort(&pts, &v)
        );
    }

    #[test]
    fn ens_empty_and_single() {
        let empty = ObjectiveMatrix::new(2);
        assert!(ens_non_dominated_sort(&empty, &[]).is_empty());
        let one = m(&[vec![1.0, 2.0]]);
        assert_eq!(ens_non_dominated_sort(&one, &[0.0]), vec![vec![0]]);
    }

    #[test]
    fn indexed_crowding_matches_materialized() {
        let pts = m(&[
            vec![9.0, 9.0], // not in the front
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ]);
        let members = [1usize, 2, 3, 4];
        let rows: Vec<Vec<f64>> = members.iter().map(|&i| pts.row(i).to_vec()).collect();
        let expect = crate::pareto::crowding_distance(&rows);
        let got = crowding_distance_indexed(&pts, &members);
        assert_eq!(expect.len(), got.len());
        for (a, b) in expect.iter().zip(&got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn cached_truncation_matches_naive_with_duplicates() {
        let pts = m(&[
            vec![0.0, 4.0],
            vec![1.0, 3.0],
            vec![1.0, 3.0], // duplicate → zero-distance tie
            vec![2.0, 2.0],
            vec![3.0, 1.0],
            vec![4.0, 0.0],
        ]);
        let dist = DistanceMatrix::from_points(&pts);
        for target in 1..=5 {
            let all: Vec<usize> = (0..6).collect();
            assert_eq!(
                spea2_truncate(&dist, all.clone(), target),
                spea2_truncate_naive(&dist, all, target),
                "target={target}"
            );
        }
    }

    #[test]
    fn lazy_truncation_matches_naive_past_compaction_threshold() {
        // n = 160 with target 20 forces 140 removals → several physical
        // compaction passes (every max(n/4, 32) = 40 removals).
        let mut seed = 0x5EED_u64;
        let mut rows = Vec::new();
        for _ in 0..160 {
            let mut r = [0.0f64; 2];
            for x in r.iter_mut() {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                // Coarse grid → plenty of exactly-tied distances.
                *x = ((seed >> 11) % 8) as f64 * 0.5;
            }
            rows.push(r.to_vec());
        }
        let pts = m(&rows);
        let dist = DistanceMatrix::from_points(&pts);
        for target in [20usize, 100, 159] {
            let all: Vec<usize> = (0..160).collect();
            assert_eq!(
                spea2_truncate(&dist, all.clone(), target),
                spea2_truncate_naive(&dist, all, target),
                "target={target}"
            );
        }
    }

    #[test]
    fn prefilled_fitness_matches_refill_path() {
        let pts = m(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ]);
        let v = vec![0.0; 4];
        let mut dist = DistanceMatrix::default();
        let full = spea2_fitness(&pts, &v, &mut dist);
        let pre = spea2_fitness_prefilled(&pts, &v, &dist);
        for (a, b) in full.iter().zip(&pre) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fitness_kernel_matches_legacy_density_semantics() {
        // n = 4 → k = 2: σ_k is the 2nd-nearest-neighbour distance.
        let pts = m(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ]);
        let v = vec![0.0; 4];
        let mut dist = DistanceMatrix::default();
        let f = spea2_fitness(&pts, &v, &mut dist);
        // Point 0 dominates point 3 only; its 2nd-nearest is sq-dist 1.
        assert_eq!(f[0], 1.0 / (1.0f64.sqrt() + 2.0));
        assert!(f[3] >= 1.0, "dominated point must have F ≥ 1");
        // The distance matrix was left filled for truncation reuse.
        assert_eq!(dist.len(), 4);
        assert_eq!(dist.get(0, 1), 1.0);
    }

    #[test]
    fn scratch_reuses_buffers() {
        let r = with_scratch(|s| {
            s.objectives.refill(2, [[1.0, 2.0].as_slice()]);
            s.violations.clear();
            s.violations.push(0.0);
            s.objectives.rows()
        });
        assert_eq!(r, 1);
        with_scratch(|s| {
            // Second entry sees the same (cleared-on-refill) buffers.
            assert_eq!(s.objectives.rows(), 1);
        });
    }
}

//! Exact hypervolume computation — the paper's solution-quality indicator.
//!
//! The hypervolume of a minimization front `S` w.r.t. a reference point
//! `r` is the Lebesgue measure of the region dominated by `S` and bounded
//! by `r`. Two exact algorithms are provided:
//!
//! * a 2-D sweep ([`hypervolume_2d`]) — `O(n log n)`, used by the
//!   system-level bi-objective experiments (Tables V–VII), and
//! * the WFG recursive algorithm ([`hypervolume`]) for any dimension —
//!   exponential in the worst case but fast for the front sizes the DSE
//!   produces (tens of points).
//!
//! Points that do not strictly dominate the reference point contribute
//! nothing and are ignored.

use crate::pareto::pareto_filter;

/// Exact 2-D hypervolume by sweeping the front in ascending first
/// objective.
///
/// # Panics
///
/// Panics if any point has a dimension other than 2.
///
/// # Examples
///
/// ```
/// use clre_moea::hypervolume::hypervolume_2d;
///
/// let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
/// // Boxes: (4-1)·(4-2) plus (4-2)·(2-1).
/// assert_eq!(hypervolume_2d(&front, &[4.0, 4.0]), 8.0);
/// ```
pub fn hypervolume_2d(points: &[Vec<f64>], reference: &[f64; 2]) -> f64 {
    for p in points {
        assert_eq!(p.len(), 2, "hypervolume_2d requires 2-D points");
    }
    let mut front: Vec<Vec<f64>> = pareto_filter(points)
        .into_iter()
        .filter(|p| p[0] < reference[0] && p[1] < reference[1])
        .collect();
    front.sort_by(|a, b| a[0].partial_cmp(&b[0]).expect("finite objectives"));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for p in &front {
        hv += (reference[0] - p[0]) * (prev_y - p[1]);
        prev_y = p[1];
    }
    hv
}

/// Exact hypervolume in any dimension via the WFG algorithm.
///
/// Dispatches to the 2-D sweep when possible. For 1-D the hypervolume is
/// the distance from the best point to the reference.
///
/// # Panics
///
/// Panics if points and reference dimensions disagree or the dimension is
/// zero.
///
/// # Examples
///
/// ```
/// use clre_moea::hypervolume::hypervolume;
///
/// let front = vec![vec![1.0, 1.0, 1.0]];
/// assert_eq!(hypervolume(&front, &[2.0, 2.0, 2.0]), 1.0);
/// ```
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    assert!(d > 0, "reference point must have at least one dimension");
    for p in points {
        assert_eq!(p.len(), d, "point/reference dimension mismatch");
    }
    let front: Vec<Vec<f64>> = pareto_filter(points)
        .into_iter()
        .filter(|p| p.iter().zip(reference).all(|(&x, &r)| x < r))
        .collect();
    match d {
        1 => front
            .iter()
            .map(|p| reference[0] - p[0])
            .fold(0.0, f64::max),
        2 => hypervolume_2d(&front, &[reference[0], reference[1]]),
        _ => wfg(&front, reference),
    }
}

/// WFG: hv(S) = Σ_i exclhv(p_i, {p_{i+1}, …}).
fn wfg(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut total = 0.0;
    for (i, p) in front.iter().enumerate() {
        total += exclusive_hv(p, &front[i + 1..], reference);
    }
    total
}

/// Exclusive hypervolume of `p` relative to the set `rest`.
fn exclusive_hv(p: &[f64], rest: &[Vec<f64>], reference: &[f64]) -> f64 {
    inclusive_hv(p, reference) - wfg(&limit_set(rest, p), reference)
}

/// Hypervolume of the single box `[p, reference]`.
fn inclusive_hv(p: &[f64], reference: &[f64]) -> f64 {
    p.iter()
        .zip(reference)
        .map(|(&x, &r)| (r - x).max(0.0))
        .product()
}

/// Clips every point of `set` into the region dominated by `p`, then
/// Pareto-filters the result.
fn limit_set(set: &[Vec<f64>], p: &[f64]) -> Vec<Vec<f64>> {
    let clipped: Vec<Vec<f64>> = set
        .iter()
        .map(|q| q.iter().zip(p).map(|(&a, &b)| a.max(b)).collect())
        .collect();
    pareto_filter(&clipped)
}

/// Percentage increase of `a` over `b`: `100·(a − b)/b`.
///
/// Returns `f64::INFINITY` when `b == 0` and `a > 0` (the paper's 10-task
/// outlier in Table V is exactly this situation rounded to a huge
/// percentage), and `0.0` when both are zero.
///
/// # Examples
///
/// ```
/// use clre_moea::hypervolume::percent_increase;
///
/// assert_eq!(percent_increase(3.0, 2.0), 50.0);
/// assert_eq!(percent_increase(0.0, 0.0), 0.0);
/// assert!(percent_increase(1.0, 0.0).is_infinite());
/// ```
pub fn percent_increase(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (a - b) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_box() {
        assert_eq!(hypervolume(&[vec![1.0, 1.0]], &[3.0, 4.0]), 6.0);
        assert_eq!(hypervolume_2d(&[vec![1.0, 1.0]], &[3.0, 4.0]), 6.0);
    }

    #[test]
    fn empty_front_is_zero() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn points_outside_reference_ignored() {
        let pts = vec![vec![0.5, 0.5], vec![2.0, 0.1]]; // second violates r0
        assert_eq!(hypervolume(&pts, &[1.0, 1.0]), 0.25);
    }

    #[test]
    fn dominated_points_do_not_change_hv() {
        let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let with_dominated = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![2.5, 2.5]];
        let r = [4.0, 4.0];
        assert_eq!(
            hypervolume_2d(&front, &r),
            hypervolume_2d(&with_dominated, &r)
        );
    }

    #[test]
    fn staircase_2d() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        // (4-1)(4-3) + (4-2)(3-2) + (4-3)(2-1) = 3 + 2 + 1 = 6.
        assert_eq!(hypervolume_2d(&front, &[4.0, 4.0]), 6.0);
    }

    #[test]
    fn wfg_matches_2d_sweep() {
        let front = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![4.0, 2.0],
            vec![5.5, 1.0],
        ];
        let r = [7.0, 6.0];
        let sweep = hypervolume_2d(&front, &r);
        let wfg_val = wfg(&pareto_filter(&front), &r);
        assert!((sweep - wfg_val).abs() < 1e-12);
    }

    #[test]
    fn three_d_hand_computed() {
        // Two boxes overlapping in a 1×1×1 cube region.
        let front = vec![vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 1.0]];
        let r = [2.0, 2.0, 2.0];
        // inclusive each: 2·1·1 = 2; intersection: max per dim = (1,1,1) → 1.
        assert_eq!(hypervolume(&front, &r), 2.0 + 2.0 - 1.0);
    }

    #[test]
    fn one_d_is_best_distance() {
        assert_eq!(hypervolume(&[vec![3.0], vec![1.0]], &[5.0]), 4.0);
    }

    #[test]
    fn hv_monotone_in_front_quality() {
        // Adding a non-dominated point can only grow hypervolume.
        let r = [10.0, 10.0];
        let base = vec![vec![2.0, 8.0], vec![8.0, 2.0]];
        let better = vec![vec![2.0, 8.0], vec![8.0, 2.0], vec![4.0, 4.0]];
        assert!(hypervolume_2d(&better, &r) > hypervolume_2d(&base, &r));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        hypervolume(&[vec![1.0, 2.0]], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn percent_increase_cases() {
        assert_eq!(percent_increase(4.62, 1.4), 230.00000000000003);
        assert_eq!(percent_increase(2.0, 2.0), 0.0);
        assert!(percent_increase(0.5, 1.0) < 0.0);
    }
}

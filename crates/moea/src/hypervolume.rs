//! Exact hypervolume computation — the paper's solution-quality indicator.
//!
//! The hypervolume of a minimization front `S` w.r.t. a reference point
//! `r` is the Lebesgue measure of the region dominated by `S` and bounded
//! by `r`. Two exact algorithms are provided:
//!
//! * a 2-D sweep ([`hypervolume_2d`]) — `O(n log n)`, used by the
//!   system-level bi-objective experiments (Tables V–VII), and
//! * the WFG recursive algorithm ([`hypervolume`]) for any dimension —
//!   exponential in the worst case but fast for the front sizes the DSE
//!   produces (tens of points).
//!
//! Points that do not strictly dominate the reference point contribute
//! nothing and are ignored.

use crate::kernels;
use crate::matrix::ObjectiveMatrix;

/// Exact 2-D hypervolume by sweeping the front in ascending first
/// objective.
///
/// # Panics
///
/// Panics if any point has a dimension other than 2.
///
/// # Examples
///
/// ```
/// use clre_moea::hypervolume::hypervolume_2d;
///
/// let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
/// // Boxes: (4-1)·(4-2) plus (4-2)·(2-1).
/// assert_eq!(hypervolume_2d(&front, &[4.0, 4.0]), 8.0);
/// ```
pub fn hypervolume_2d(points: &[Vec<f64>], reference: &[f64; 2]) -> f64 {
    for p in points {
        assert_eq!(p.len(), 2, "hypervolume_2d requires 2-D points");
    }
    hv2d_matrix(&ObjectiveMatrix::from_rows(points), reference)
}

/// 2-D sweep over a flat matrix: sort the in-reference non-dominated row
/// indices by first objective, no row copies.
fn hv2d_matrix(points: &ObjectiveMatrix, reference: &[f64; 2]) -> f64 {
    let mut front: Vec<usize> = kernels::non_dominated_matrix(points)
        .into_iter()
        .filter(|&i| {
            let p = points.row(i);
            p[0] < reference[0] && p[1] < reference[1]
        })
        .collect();
    front.sort_by(|&a, &b| {
        points.row(a)[0]
            .partial_cmp(&points.row(b)[0])
            .expect("finite objectives")
    });
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for &i in &front {
        let p = points.row(i);
        hv += (reference[0] - p[0]) * (prev_y - p[1]);
        prev_y = p[1];
    }
    hv
}

/// Exact hypervolume in any dimension via the WFG algorithm.
///
/// Dispatches to the 2-D sweep when possible. For 1-D the hypervolume is
/// the distance from the best point to the reference.
///
/// # Panics
///
/// Panics if points and reference dimensions disagree or the dimension is
/// zero.
///
/// # Examples
///
/// ```
/// use clre_moea::hypervolume::hypervolume;
///
/// let front = vec![vec![1.0, 1.0, 1.0]];
/// assert_eq!(hypervolume(&front, &[2.0, 2.0, 2.0]), 1.0);
/// ```
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    assert!(d > 0, "reference point must have at least one dimension");
    for p in points {
        assert_eq!(p.len(), d, "point/reference dimension mismatch");
    }
    hypervolume_matrix(&ObjectiveMatrix::from_rows(points), reference)
}

/// [`hypervolume`] on an already-flat [`ObjectiveMatrix`] — the entry
/// point for callers that keep objectives in matrix form (the kernel
/// benchmarks, future indicator plumbing).
///
/// # Panics
///
/// Panics if `reference.len()` is zero or differs from `points.cols()`
/// on a non-empty matrix.
pub fn hypervolume_matrix(points: &ObjectiveMatrix, reference: &[f64]) -> f64 {
    let d = reference.len();
    assert!(d > 0, "reference point must have at least one dimension");
    if !points.is_empty() {
        assert_eq!(points.cols(), d, "point/reference dimension mismatch");
    }
    let mut front = ObjectiveMatrix::with_capacity(d, points.rows());
    for i in kernels::non_dominated_matrix(points) {
        let row = points.row(i);
        if row.iter().zip(reference).all(|(&x, &r)| x < r) {
            front.push_row(row);
        }
    }
    match d {
        1 => front
            .iter_rows()
            .map(|p| reference[0] - p[0])
            .fold(0.0, f64::max),
        2 => hv2d_matrix(&front, &[reference[0], reference[1]]),
        _ => wfg(&front, reference),
    }
}

/// WFG: hv(S) = Σ_i exclhv(p_i, {p_{i+1}, …}).
fn wfg(front: &ObjectiveMatrix, reference: &[f64]) -> f64 {
    let mut total = 0.0;
    for i in 0..front.rows() {
        total += exclusive_hv(front, i, reference);
    }
    total
}

/// Exclusive hypervolume of row `i` relative to the later rows.
fn exclusive_hv(front: &ObjectiveMatrix, i: usize, reference: &[f64]) -> f64 {
    inclusive_hv(front.row(i), reference) - wfg(&limit_set(front, i), reference)
}

/// Hypervolume of the single box `[p, reference]`.
fn inclusive_hv(p: &[f64], reference: &[f64]) -> f64 {
    p.iter()
        .zip(reference)
        .map(|(&x, &r)| (r - x).max(0.0))
        .product()
}

/// Clips every row after `i` into the region dominated by row `i`, then
/// Pareto-filters the result — one matrix allocation per recursion level
/// instead of one `Vec` per point.
fn limit_set(front: &ObjectiveMatrix, i: usize) -> ObjectiveMatrix {
    let p = front.row(i);
    let cols = front.cols();
    let mut clipped = ObjectiveMatrix::with_capacity(cols, front.rows() - i - 1);
    let mut buf = vec![0.0; cols];
    for j in (i + 1)..front.rows() {
        for (b, (&a, &q)) in buf.iter_mut().zip(front.row(j).iter().zip(p)) {
            *b = a.max(q);
        }
        clipped.push_row(&buf);
    }
    let keep = kernels::non_dominated_matrix(&clipped);
    let mut filtered = ObjectiveMatrix::with_capacity(cols, keep.len());
    for k in keep {
        filtered.push_row(clipped.row(k));
    }
    filtered
}

/// Percentage increase of `a` over `b`: `100·(a − b)/b`.
///
/// Returns `f64::INFINITY` when `b == 0` and `a > 0` (the paper's 10-task
/// outlier in Table V is exactly this situation rounded to a huge
/// percentage), and `0.0` when both are zero.
///
/// # Examples
///
/// ```
/// use clre_moea::hypervolume::percent_increase;
///
/// assert_eq!(percent_increase(3.0, 2.0), 50.0);
/// assert_eq!(percent_increase(0.0, 0.0), 0.0);
/// assert!(percent_increase(1.0, 0.0).is_infinite());
/// ```
pub fn percent_increase(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (a - b) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_box() {
        assert_eq!(hypervolume(&[vec![1.0, 1.0]], &[3.0, 4.0]), 6.0);
        assert_eq!(hypervolume_2d(&[vec![1.0, 1.0]], &[3.0, 4.0]), 6.0);
    }

    #[test]
    fn empty_front_is_zero() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn points_outside_reference_ignored() {
        let pts = vec![vec![0.5, 0.5], vec![2.0, 0.1]]; // second violates r0
        assert_eq!(hypervolume(&pts, &[1.0, 1.0]), 0.25);
    }

    #[test]
    fn dominated_points_do_not_change_hv() {
        let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let with_dominated = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![2.5, 2.5]];
        let r = [4.0, 4.0];
        assert_eq!(
            hypervolume_2d(&front, &r),
            hypervolume_2d(&with_dominated, &r)
        );
    }

    #[test]
    fn staircase_2d() {
        let front = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        // (4-1)(4-3) + (4-2)(3-2) + (4-3)(2-1) = 3 + 2 + 1 = 6.
        assert_eq!(hypervolume_2d(&front, &[4.0, 4.0]), 6.0);
    }

    #[test]
    fn wfg_matches_2d_sweep() {
        let front = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![4.0, 2.0],
            vec![5.5, 1.0],
        ];
        let r = [7.0, 6.0];
        let sweep = hypervolume_2d(&front, &r);
        let wfg_val = wfg(&ObjectiveMatrix::from_rows(&front), &r);
        assert!((sweep - wfg_val).abs() < 1e-12);
    }

    #[test]
    fn three_d_hand_computed() {
        // Two boxes overlapping in a 1×1×1 cube region.
        let front = vec![vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 1.0]];
        let r = [2.0, 2.0, 2.0];
        // inclusive each: 2·1·1 = 2; intersection: max per dim = (1,1,1) → 1.
        assert_eq!(hypervolume(&front, &r), 2.0 + 2.0 - 1.0);
    }

    #[test]
    fn one_d_is_best_distance() {
        assert_eq!(hypervolume(&[vec![3.0], vec![1.0]], &[5.0]), 4.0);
    }

    #[test]
    fn hv_monotone_in_front_quality() {
        // Adding a non-dominated point can only grow hypervolume.
        let r = [10.0, 10.0];
        let base = vec![vec![2.0, 8.0], vec![8.0, 2.0]];
        let better = vec![vec![2.0, 8.0], vec![8.0, 2.0], vec![4.0, 4.0]];
        assert!(hypervolume_2d(&better, &r) > hypervolume_2d(&base, &r));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        hypervolume(&[vec![1.0, 2.0]], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn percent_increase_cases() {
        assert_eq!(percent_increase(4.62, 1.4), 230.00000000000003);
        assert_eq!(percent_increase(2.0, 2.0), 0.0);
        assert!(percent_increase(0.5, 1.0) < 0.0);
    }
}

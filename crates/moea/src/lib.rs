//! Multi-objective evolutionary optimization built from scratch for the
//! CL(R)Early reproduction: NSGA-II, Pareto utilities and hypervolume.
//!
//! The paper implements its GA-based DSE on top of DEAP/PYGMO; no
//! comparable Rust library is assumed here, so this crate provides:
//!
//! * [`Problem`] / [`Variation`] — the abstraction between an optimization
//!   problem (genome sampling + evaluation) and its genetic operators,
//! * [`pareto`] — dominance tests, non-dominated filtering and fast
//!   non-dominated sorting (Deb et al., with constraint-domination),
//! * [`Nsga2`] — the elitist generational loop with crowding-distance
//!   truncation, tournament selection (tournament of 5 as in the paper)
//!   and optional *seeding* of the initial population — the mechanism the
//!   proposed methodology uses to chain `pfCLR → fcCLR`,
//! * [`hypervolume`] — exact 2-D sweep and exact n-D WFG computation, the
//!   paper's solution-quality indicator (Tables V–VII),
//! * [`matrix`] / [`kernels`] — the flat-buffer selection kernels both
//!   backends share: ENS-SS non-dominated sort, index-based crowding and
//!   cached-distance SPEA2 truncation, bit-identical to the naive
//!   algorithms they replace (kept alongside as test oracles),
//! * [`Spea2`] — a second MOEA backend (the paper runs on DEAP *and*
//!   PYGMO); the `ablation_moea` study checks the methodology is not
//!   NSGA-II-specific.
//!
//! All objectives are minimized; see `clre-model`'s QoS docs for the sign
//! convention.
//!
//! # Examples
//!
//! Minimize the bi-objective Schaffer problem `f(x) = (x², (x−2)²)`:
//!
//! ```
//! use clre_moea::{Evaluation, Nsga2, Nsga2Config, Problem, Variation};
//! use rand::Rng;
//!
//! struct Schaffer;
//! impl Problem for Schaffer {
//!     type Genome = f64;
//!     fn objective_count(&self) -> usize { 2 }
//!     fn random_genome(&self, rng: &mut dyn rand::RngCore) -> f64 {
//!         rng.gen_range(-10.0..10.0)
//!     }
//!     fn evaluate(&self, x: &f64) -> Evaluation {
//!         Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
//!     }
//! }
//! struct Gaussian;
//! impl Variation<f64> for Gaussian {
//!     fn crossover(&self, a: &f64, b: &f64, _rng: &mut dyn rand::RngCore) -> (f64, f64) {
//!         let mid = (a + b) / 2.0;
//!         (mid, a + b - mid)
//!     }
//!     fn mutate(&self, x: &mut f64, rng: &mut dyn rand::RngCore) {
//!         *x += rng.gen_range(-0.5..0.5);
//!     }
//! }
//!
//! let cfg = Nsga2Config::new(40, 60).with_seed(7);
//! let result = Nsga2::new(Schaffer, Gaussian, cfg).run();
//! // The true Pareto set is x ∈ [0, 2].
//! for ind in result.front() {
//!     assert!(ind.genome > -0.5 && ind.genome < 2.5);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dispatch;
pub mod evolution;
pub mod hypervolume;
pub mod kernels;
pub mod matrix;
mod nsga2;
pub mod pareto;
mod problem;
mod spea2;
pub mod test_problems;

pub use evolution::{EvoOutcome, EvoSnapshot, EvolutionState};
pub use kernels::SelectionSplit;
pub use matrix::{DistanceCache, DistanceMatrix, ObjectiveMatrix};
pub use nsga2::{Individual, Nsga2, Nsga2Config, Nsga2State, OptimizationResult};
pub use problem::{EvalError, Evaluation, Problem, RemoteEval, Variation};
pub use spea2::{Spea2, Spea2Config, Spea2Result, Spea2State};

//! SPEA2 — the Strength Pareto Evolutionary Algorithm 2 (Zitzler,
//! Laumanns & Thiele, 2001).
//!
//! Provided as a second MOEA backend next to [`Nsga2`](crate::Nsga2): the
//! paper implements its GA flows on DEAP *and* PYGMO, and the
//! `ablation_moea` study uses this implementation to check that the
//! methodology's conclusions do not hinge on the particular MOEA.
//!
//! Differences from NSGA-II: fitness combines *strength*-based raw
//! fitness (how many dominators an individual has, weighted by how much
//! those dominators dominate) with a k-nearest-neighbour density estimate,
//! and elitism flows through a fixed-size external archive truncated by
//! iteratively removing the most crowded member.

use crate::pareto::constrained_dominates;
use crate::{Evaluation, Individual, Problem, Variation};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration of one SPEA2 run.
#[derive(Debug, Clone, PartialEq)]
pub struct Spea2Config {
    /// Working population size per generation.
    pub population_size: usize,
    /// External archive size (commonly equal to the population size).
    pub archive_size: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-pair crossover probability.
    pub crossover_prob: f64,
    /// Per-offspring mutation probability.
    pub mutation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Spea2Config {
    /// Creates a configuration with the paper's operator probabilities
    /// (crossover 0.8, mutation 0.05) and `archive_size =
    /// population_size`.
    ///
    /// # Panics
    ///
    /// Panics if `population_size < 2` or `generations == 0`.
    pub fn new(population_size: usize, generations: usize) -> Self {
        assert!(population_size >= 2, "population must hold at least 2");
        assert!(generations > 0, "at least one generation is required");
        Spea2Config {
            population_size,
            archive_size: population_size,
            generations,
            crossover_prob: 0.8,
            mutation_prob: 0.05,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the archive size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn with_archive_size(mut self, size: usize) -> Self {
        assert!(size > 0, "archive must hold at least 1");
        self.archive_size = size;
        self
    }
}

/// The SPEA2 optimizer; same [`Problem`]/[`Variation`] interface as
/// [`Nsga2`](crate::Nsga2).
///
/// # Examples
///
/// ```
/// use clre_moea::{Evaluation, Problem, Spea2, Spea2Config, Variation};
/// use rand::Rng;
///
/// struct Schaffer;
/// impl Problem for Schaffer {
///     type Genome = f64;
///     fn objective_count(&self) -> usize { 2 }
///     fn random_genome(&self, rng: &mut dyn rand::RngCore) -> f64 {
///         rng.gen_range(-10.0..10.0)
///     }
///     fn evaluate(&self, x: &f64) -> Evaluation {
///         Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
///     }
/// }
/// struct Blend;
/// impl Variation<f64> for Blend {
///     fn crossover(&self, a: &f64, b: &f64, _: &mut dyn rand::RngCore) -> (f64, f64) {
///         ((a + b) / 2.0, (a + b) / 2.0)
///     }
///     fn mutate(&self, x: &mut f64, rng: &mut dyn rand::RngCore) {
///         *x += rng.gen_range(-0.5..0.5);
///     }
/// }
///
/// let result = Spea2::new(Schaffer, Blend, Spea2Config::new(40, 60).with_seed(3)).run();
/// for ind in result.archive() {
///     assert!(ind.genome > -0.7 && ind.genome < 2.7);
/// }
/// ```
#[derive(Debug)]
pub struct Spea2<P: Problem, V> {
    problem: P,
    variation: V,
    config: Spea2Config,
    seeds: Vec<P::Genome>,
}

/// The outcome of a SPEA2 run: the final archive (non-dominated members
/// first — the archive *is* the approximation set).
#[derive(Debug, Clone)]
pub struct Spea2Result<G> {
    archive: Vec<Individual<G>>,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
}

impl<G> Spea2Result<G> {
    /// The final archive.
    pub fn archive(&self) -> &[Individual<G>] {
        &self.archive
    }

    /// The non-dominated objective vectors of the archive.
    pub fn front_objectives(&self) -> Vec<Vec<f64>> {
        let objs: Vec<Vec<f64>> = self.archive.iter().map(|i| i.objectives.clone()).collect();
        crate::pareto::non_dominated_indices(&objs)
            .into_iter()
            .map(|i| objs[i].clone())
            .collect()
    }
}

impl<P, V> Spea2<P, V>
where
    P: Problem,
    V: Variation<P::Genome>,
{
    /// Creates an optimizer.
    pub fn new(problem: P, variation: V, config: Spea2Config) -> Self {
        Spea2 {
            problem,
            variation,
            config,
            seeds: Vec::new(),
        }
    }

    /// Injects seed genomes into the initial population (builder style).
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<P::Genome>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Runs the optimization to completion.
    pub fn run(&self) -> Spea2Result<P::Genome> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5EA2_5EA2);
        let mut evaluations = 0usize;
        let evaluate = |genome: P::Genome, evals: &mut usize| {
            let Evaluation {
                objectives,
                violation,
            } = self.problem.evaluate(&genome);
            *evals += 1;
            Individual {
                genome,
                objectives,
                violation,
            }
        };

        let mut population: Vec<Individual<P::Genome>> = self
            .seeds
            .iter()
            .take(self.config.population_size)
            .cloned()
            .map(|g| evaluate(g, &mut evaluations))
            .collect();
        while population.len() < self.config.population_size {
            let g = self.problem.random_genome(&mut rng);
            population.push(evaluate(g, &mut evaluations));
        }
        let mut archive: Vec<Individual<P::Genome>> = Vec::new();

        for _ in 0..self.config.generations {
            // Union, fitness, environmental selection into the archive.
            let mut union = std::mem::take(&mut population);
            union.extend(std::mem::take(&mut archive));
            let fitness = spea2_fitness(&union);
            archive = environmental_selection(union, &fitness, self.config.archive_size);

            // Mating selection by binary tournament on SPEA2 fitness
            // (recomputed within the archive).
            let arch_fitness = spea2_fitness(&archive);
            while population.len() < self.config.population_size {
                let a = tournament(&arch_fitness, &mut rng);
                let b = tournament(&arch_fitness, &mut rng);
                let (mut c1, mut c2) = if rng.gen_bool(self.config.crossover_prob) {
                    self.variation
                        .crossover(&archive[a].genome, &archive[b].genome, &mut rng)
                } else {
                    (archive[a].genome.clone(), archive[b].genome.clone())
                };
                if rng.gen_bool(self.config.mutation_prob) {
                    self.variation.mutate(&mut c1, &mut rng);
                }
                if rng.gen_bool(self.config.mutation_prob) {
                    self.variation.mutate(&mut c2, &mut rng);
                }
                population.push(evaluate(c1, &mut evaluations));
                if population.len() < self.config.population_size {
                    population.push(evaluate(c2, &mut evaluations));
                }
            }
        }

        // Final archive update over the last generation.
        let mut union = population;
        union.extend(archive);
        let fitness = spea2_fitness(&union);
        let archive = environmental_selection(union, &fitness, self.config.archive_size);
        Spea2Result {
            archive,
            evaluations,
        }
    }
}

/// Binary tournament: lower SPEA2 fitness wins.
fn tournament(fitness: &[f64], rng: &mut dyn RngCore) -> usize {
    let a = rng.gen_range(0..fitness.len());
    let b = rng.gen_range(0..fitness.len());
    if fitness[a] <= fitness[b] {
        a
    } else {
        b
    }
}

/// SPEA2 fitness F(i) = R(i) + D(i): raw strength-based fitness plus the
/// k-nearest-neighbour density term (< 1 iff non-dominated).
fn spea2_fitness<G>(pop: &[Individual<G>]) -> Vec<f64> {
    let n = pop.len();
    // Strength: how many others each individual dominates.
    let mut strength = vec![0usize; n];
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // dominators of i
    for i in 0..n {
        for j in 0..n {
            if i != j
                && constrained_dominates(
                    &pop[i].objectives,
                    pop[i].violation,
                    &pop[j].objectives,
                    pop[j].violation,
                )
            {
                strength[i] += 1;
                dominated_by[j].push(i);
            }
        }
    }
    // Raw fitness: sum of the strengths of one's dominators.
    let raw: Vec<f64> = (0..n)
        .map(|i| dominated_by[i].iter().map(|&d| strength[d] as f64).sum())
        .collect();
    // Density: 1 / (σ_k + 2) with k = √n.
    let k = (n as f64).sqrt() as usize;
    let density: Vec<f64> = (0..n)
        .map(|i| {
            let mut dists: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| sq_dist(&pop[i].objectives, &pop[j].objectives))
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let sigma_k = dists
                .get(k.saturating_sub(1))
                .copied()
                .unwrap_or(0.0)
                .sqrt();
            1.0 / (sigma_k + 2.0)
        })
        .collect();
    raw.iter().zip(&density).map(|(r, d)| r + d).collect()
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// SPEA2 environmental selection: keep all non-dominated (F < 1); truncate
/// overflow by iteratively removing the member with the smallest
/// nearest-neighbour distance; fill underflow with the best dominated.
fn environmental_selection<G>(
    union: Vec<Individual<G>>,
    fitness: &[f64],
    target: usize,
) -> Vec<Individual<G>> {
    let mut order: Vec<usize> = (0..union.len()).collect();
    order.sort_by(|&a, &b| {
        fitness[a]
            .partial_cmp(&fitness[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let nondom: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| fitness[i] < 1.0)
        .collect();
    let chosen: Vec<usize> = if nondom.len() > target {
        truncate_by_distance(&union, nondom, target)
    } else {
        order.into_iter().take(target).collect()
    };
    let mut keep = vec![false; union.len()];
    for &i in &chosen {
        keep[i] = true;
    }
    union
        .into_iter()
        .zip(keep)
        .filter_map(|(ind, k)| k.then_some(ind))
        .collect()
}

/// Iterative truncation: repeatedly drop the individual whose sorted
/// distance vector to the remaining members is lexicographically smallest.
fn truncate_by_distance<G>(
    union: &[Individual<G>],
    mut members: Vec<usize>,
    target: usize,
) -> Vec<usize> {
    while members.len() > target {
        let mut worst_pos = 0usize;
        let mut worst_key: Vec<f64> = Vec::new();
        for (pos, &i) in members.iter().enumerate() {
            let mut dists: Vec<f64> = members
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| sq_dist(&union[i].objectives, &union[j].objectives))
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            if pos == 0 || dists < worst_key {
                worst_key = dists;
                worst_pos = pos;
            }
        }
        members.swap_remove(worst_pos);
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    struct Schaffer;

    impl Problem for Schaffer {
        type Genome = f64;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(-100.0f64..100.0)
        }

        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
    }

    struct Gaussian;

    impl Variation<f64> for Gaussian {
        fn crossover(&self, a: &f64, b: &f64, rng: &mut dyn RngCore) -> (f64, f64) {
            let t: f64 = rng.gen_range(0.0..1.0);
            (t * a + (1.0 - t) * b, (1.0 - t) * a + t * b)
        }

        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += rng.gen_range(-1.0f64..1.0);
        }
    }

    #[test]
    fn converges_to_schaffer_front() {
        let res = Spea2::new(Schaffer, Gaussian, Spea2Config::new(40, 60).with_seed(1)).run();
        assert!(!res.archive().is_empty());
        for ind in res.archive() {
            assert!(
                ind.genome > -1.0 && ind.genome < 3.0,
                "genome {} far off the Pareto set",
                ind.genome
            );
        }
        let front = res.front_objectives();
        assert!(
            front.len() >= 5,
            "front collapsed to {} points",
            front.len()
        );
    }

    #[test]
    fn archive_respects_size_bound() {
        let cfg = Spea2Config::new(30, 15).with_seed(2).with_archive_size(12);
        let res = Spea2::new(Schaffer, Gaussian, cfg).run();
        assert!(res.archive().len() <= 12);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = Spea2Config::new(20, 10).with_seed(7);
        let a = Spea2::new(Schaffer, Gaussian, cfg.clone()).run();
        let b = Spea2::new(Schaffer, Gaussian, cfg).run();
        assert_eq!(a.front_objectives(), b.front_objectives());
    }

    #[test]
    fn seeding_preserves_optimum() {
        let res = Spea2::new(Schaffer, Gaussian, Spea2Config::new(16, 4).with_seed(3))
            .with_seeds(vec![1.0])
            .run();
        let best: f64 = res
            .archive()
            .iter()
            .map(|i| i.objectives.iter().sum::<f64>())
            .fold(f64::MAX, f64::min);
        assert!(best <= 2.0 + 1e-9);
    }

    #[test]
    fn fitness_below_one_iff_nondominated() {
        let pop = vec![
            Individual {
                genome: 0.0,
                objectives: vec![1.0, 1.0],
                violation: 0.0,
            },
            Individual {
                genome: 0.0,
                objectives: vec![2.0, 2.0],
                violation: 0.0,
            },
            Individual {
                genome: 0.0,
                objectives: vec![0.5, 3.0],
                violation: 0.0,
            },
        ];
        let f = spea2_fitness(&pop);
        assert!(f[0] < 1.0);
        assert!(f[1] >= 1.0, "dominated point must have F ≥ 1: {}", f[1]);
        assert!(f[2] < 1.0);
    }

    #[test]
    fn evaluations_counted() {
        let cfg = Spea2Config::new(10, 5).with_seed(1);
        let res = Spea2::new(Schaffer, Gaussian, cfg).run();
        assert_eq!(res.evaluations, 10 + 5 * 10);
    }
}

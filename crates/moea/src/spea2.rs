//! SPEA2 — the Strength Pareto Evolutionary Algorithm 2 (Zitzler,
//! Laumanns & Thiele, 2001).
//!
//! Provided as a second MOEA backend next to [`Nsga2`](crate::Nsga2): the
//! paper implements its GA flows on DEAP *and* PYGMO, and the
//! `ablation_moea` study uses this implementation to check that the
//! methodology's conclusions do not hinge on the particular MOEA.
//!
//! Differences from NSGA-II: fitness combines *strength*-based raw
//! fitness (how many dominators an individual has, weighted by how much
//! those dominators dominate) with a k-nearest-neighbour density estimate,
//! and elitism flows through a fixed-size external archive truncated by
//! iteratively removing the most crowded member.

use crate::kernels::{self, SelectionSplit};
use crate::matrix::{DistanceCache, ObjectiveMatrix};
use crate::{Evaluation, Individual, Problem, Variation};
use clre_exec::Executor;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::time::Instant;

/// Configuration of one SPEA2 run.
#[derive(Debug, Clone, PartialEq)]
pub struct Spea2Config {
    /// Working population size per generation.
    pub population_size: usize,
    /// External archive size (commonly equal to the population size).
    pub archive_size: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-pair crossover probability.
    pub crossover_prob: f64,
    /// Per-offspring mutation probability.
    pub mutation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Spea2Config {
    /// Creates a configuration with the paper's operator probabilities
    /// (crossover 0.8, mutation 0.05) and `archive_size =
    /// population_size`.
    ///
    /// # Panics
    ///
    /// Panics if `population_size < 2` or `generations == 0`.
    pub fn new(population_size: usize, generations: usize) -> Self {
        assert!(population_size >= 2, "population must hold at least 2");
        assert!(generations > 0, "at least one generation is required");
        Spea2Config {
            population_size,
            archive_size: population_size,
            generations,
            crossover_prob: 0.8,
            mutation_prob: 0.05,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the archive size (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    #[must_use]
    pub fn with_archive_size(mut self, size: usize) -> Self {
        assert!(size > 0, "archive must hold at least 1");
        self.archive_size = size;
        self
    }
}

/// The SPEA2 optimizer; same [`Problem`]/[`Variation`] interface as
/// [`Nsga2`](crate::Nsga2).
///
/// # Examples
///
/// ```
/// use clre_moea::{Evaluation, Problem, Spea2, Spea2Config, Variation};
/// use rand::Rng;
///
/// struct Schaffer;
/// impl Problem for Schaffer {
///     type Genome = f64;
///     fn objective_count(&self) -> usize { 2 }
///     fn random_genome(&self, rng: &mut dyn rand::RngCore) -> f64 {
///         rng.gen_range(-10.0..10.0)
///     }
///     fn evaluate(&self, x: &f64) -> Evaluation {
///         Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
///     }
/// }
/// struct Blend;
/// impl Variation<f64> for Blend {
///     fn crossover(&self, a: &f64, b: &f64, _: &mut dyn rand::RngCore) -> (f64, f64) {
///         ((a + b) / 2.0, (a + b) / 2.0)
///     }
///     fn mutate(&self, x: &mut f64, rng: &mut dyn rand::RngCore) {
///         *x += rng.gen_range(-0.5..0.5);
///     }
/// }
///
/// let result = Spea2::new(Schaffer, Blend, Spea2Config::new(40, 60).with_seed(3)).run();
/// for ind in result.archive() {
///     assert!(ind.genome > -0.7 && ind.genome < 2.7);
/// }
/// ```
#[derive(Debug)]
pub struct Spea2<P: Problem, V> {
    problem: P,
    variation: V,
    config: Spea2Config,
    seeds: Vec<P::Genome>,
}

/// Resumable mid-run SPEA2 state: the evaluated working population, the
/// external archive, and the exact raw RNG state, captured between
/// generations — the same step-wise contract as
/// [`Nsga2State`](crate::Nsga2State).
///
/// Produced by [`Spea2::init_state`], advanced by [`Spea2::step`] and
/// consumed by [`Spea2::finalize`]; `init_state` + `generations`×`step` +
/// `finalize` replays the *identical* random stream of [`Spea2::run`], so
/// a run interrupted at any generation boundary and resumed from a
/// snapshot of this state reaches the same final archive.
#[derive(Debug, Clone, PartialEq)]
pub struct Spea2State<G> {
    /// The current evaluated working population.
    pub population: Vec<Individual<G>>,
    /// The external archive (empty before the first step).
    pub archive: Vec<Individual<G>>,
    /// Generations completed so far.
    pub generation: usize,
    /// Fitness evaluations spent so far.
    pub evaluations: usize,
    /// Raw xoshiro state words of the run's RNG, as of the last completed
    /// generation boundary.
    pub rng_state: [u64; 4],
    /// Generation-to-generation distance reuse (the previous archive's
    /// rows + pairwise distances). Self-validating and excluded from
    /// state equality — a cold cache (fresh init, snapshot restore)
    /// selects bit-identically to a warm one, just slower on its first
    /// generation.
    pub dist_cache: DistanceCache,
}

/// The outcome of a SPEA2 run: the final archive (non-dominated members
/// first — the archive *is* the approximation set).
#[derive(Debug, Clone)]
pub struct Spea2Result<G> {
    archive: Vec<Individual<G>>,
    /// Total fitness evaluations performed.
    pub evaluations: usize,
}

impl<G> Spea2Result<G> {
    /// The final archive.
    pub fn archive(&self) -> &[Individual<G>] {
        &self.archive
    }

    /// Consumes the result, returning the owned archive members.
    pub fn into_archive(self) -> Vec<Individual<G>> {
        self.archive
    }

    /// The non-dominated objective vectors of the archive — collected
    /// once from a flat borrowed buffer (no intermediate row clones).
    pub fn front_objectives(&self) -> Vec<Vec<f64>> {
        let cols = self.archive.first().map_or(0, |i| i.objectives.len());
        let mut m = ObjectiveMatrix::with_capacity(cols, self.archive.len());
        for ind in &self.archive {
            m.push_row(&ind.objectives);
        }
        kernels::non_dominated_matrix(&m)
            .into_iter()
            .map(|i| m.row(i).to_vec())
            .collect()
    }
}

impl<P, V> Spea2<P, V>
where
    P: Problem,
    V: Variation<P::Genome>,
{
    /// Creates an optimizer.
    pub fn new(problem: P, variation: V, config: Spea2Config) -> Self {
        Spea2 {
            problem,
            variation,
            config,
            seeds: Vec::new(),
        }
    }

    /// Injects seed genomes into the initial population (builder style).
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<P::Genome>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Runs the optimization to completion.
    pub fn run(&self) -> Spea2Result<P::Genome> {
        self.run_from(self.init_state())
    }

    /// Continues a (possibly restored) state to completion.
    pub fn run_from(&self, mut state: Spea2State<P::Genome>) -> Spea2Result<P::Genome> {
        while self.step(&mut state) {}
        self.finalize(state)
    }

    /// [`Spea2::run`] with batch evaluation through `exec` — bit-identical
    /// results for any worker count.
    pub fn run_with(&self, exec: &Executor) -> Spea2Result<P::Genome>
    where
        P: Sync,
        P::Genome: Send + Sync,
        V: Sync,
    {
        self.run_from_with(self.init_state_with(exec), exec)
    }

    /// [`Spea2::run_from`] with batch evaluation through `exec`.
    pub fn run_from_with(
        &self,
        mut state: Spea2State<P::Genome>,
        exec: &Executor,
    ) -> Spea2Result<P::Genome>
    where
        P: Sync,
        P::Genome: Send + Sync,
        V: Sync,
    {
        while self.step_with(&mut state, exec) {}
        self.finalize(state)
    }

    /// Evaluates the initial population (seeds first, then random
    /// genomes) and captures the RNG at the first generation boundary.
    pub fn init_state(&self) -> Spea2State<P::Genome> {
        self.init_core(|genomes| genomes.into_iter().map(|g| self.eval_one(g)).collect())
    }

    /// [`Spea2::init_state`] with the initial-population evaluation fanned
    /// out through `exec` (recorded as trace step 0).
    pub fn init_state_with(&self, exec: &Executor) -> Spea2State<P::Genome>
    where
        P: Sync,
        P::Genome: Send + Sync,
        V: Sync,
    {
        self.init_core(|genomes| {
            crate::dispatch::evaluate_generation(&self.problem, exec, 0, genomes)
        })
    }

    /// Advances the state by one generation: environmental selection of
    /// the external archive from population ∪ archive, then a fresh
    /// working population bred from the archive by binary tournament on
    /// SPEA2 fitness. Returns `false` (leaving the state untouched) once
    /// the configured generation count is reached.
    pub fn step(&self, state: &mut Spea2State<P::Genome>) -> bool {
        self.step_core(
            state,
            |genomes, _| genomes.into_iter().map(|g| self.eval_one(g)).collect(),
            |_| {},
        )
    }

    /// [`Spea2::step`] with the offspring batch fanned out through `exec`
    /// (recorded as a trace step at the new generation number). Breeding
    /// (the only RNG consumer) stays on the calling thread, so `step` and
    /// `step_with` advance the state identically for any worker count.
    pub fn step_with(&self, state: &mut Spea2State<P::Genome>, exec: &Executor) -> bool
    where
        P: Sync,
        P::Genome: Send + Sync,
        V: Sync,
    {
        self.step_core(
            state,
            |genomes, generation| {
                crate::dispatch::evaluate_generation(&self.problem, exec, generation, genomes)
            },
            |split: SelectionSplit| {
                exec.annotate_selection_split(
                    split.total_us,
                    split.sort_us,
                    split.truncate_us,
                    split.dist_us,
                );
            },
        )
    }

    /// Turns a state into the run result: one last environmental
    /// selection over population ∪ archive (reusing the state's distance
    /// cache when it still matches).
    pub fn finalize(&self, state: Spea2State<P::Genome>) -> Spea2Result<P::Genome> {
        let Spea2State {
            population,
            archive,
            evaluations,
            mut dist_cache,
            ..
        } = state;
        let mut union = population;
        union.extend(archive);
        let mut split = SelectionSplit::default();
        let (archive, _) =
            select_archive_cached(union, self.config.archive_size, &mut dist_cache, &mut split);
        Spea2Result {
            archive,
            evaluations,
        }
    }

    fn init_core<E>(&self, evaluate: E) -> Spea2State<P::Genome>
    where
        E: FnOnce(Vec<P::Genome>) -> Vec<Individual<P::Genome>>,
    {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5EA2_5EA2);
        let mut genomes: Vec<P::Genome> = self
            .seeds
            .iter()
            .take(self.config.population_size)
            .cloned()
            .collect();
        while genomes.len() < self.config.population_size {
            genomes.push(self.problem.random_genome(&mut rng));
        }
        let evaluations = genomes.len();
        Spea2State {
            population: evaluate(genomes),
            archive: Vec::new(),
            generation: 0,
            evaluations,
            rng_state: rng.state_words(),
            dist_cache: DistanceCache::default(),
        }
    }

    /// Shared skeleton of [`Spea2::step`] / [`Spea2::step_with`]: the
    /// offspring batch is fully bred first (consuming the RNG in exactly
    /// the order the classic interleaved loop did — fitness evaluation
    /// never touches the RNG) and then handed to `evaluate` along with the
    /// 1-based generation number it belongs to.
    ///
    /// `report` receives the generation's selection cost split
    /// ([`SelectionSplit`], microseconds: union fitness + archive
    /// selection + mating fitness) once the step is complete — after
    /// `evaluate`, so a telemetry-backed reporter annotates this
    /// generation's own trace record.
    fn step_core<E, R>(&self, state: &mut Spea2State<P::Genome>, evaluate: E, report: R) -> bool
    where
        E: FnOnce(Vec<P::Genome>, usize) -> Vec<Individual<P::Genome>>,
        R: FnOnce(SelectionSplit),
    {
        if state.generation >= self.config.generations {
            return false;
        }
        let mut rng = StdRng::from_state_words(state.rng_state);

        // Union, fitness, environmental selection into the archive. The
        // distance cache carries the previous archive's pairwise block;
        // the mating fitness falls out of the same selection pass (the
        // compacted survivor matrix *is* the archive's distance matrix),
        // so nothing is rebuilt from scratch.
        let selection = Instant::now();
        let mut split = SelectionSplit::default();
        let mut union = std::mem::take(&mut state.population);
        union.extend(std::mem::take(&mut state.archive));
        let (archive, arch_fitness) = select_archive_cached(
            union,
            self.config.archive_size,
            &mut state.dist_cache,
            &mut split,
        );
        state.archive = archive;
        split.total_us = selection.elapsed().as_nanos() as u64 / 1_000;
        let pop_size = self.config.population_size;
        let mut genomes: Vec<P::Genome> = Vec::with_capacity(pop_size);
        while genomes.len() < pop_size {
            let a = tournament(&arch_fitness, &mut rng);
            let b = tournament(&arch_fitness, &mut rng);
            let (mut c1, mut c2) = if rng.gen_bool(self.config.crossover_prob) {
                self.variation.crossover(
                    &state.archive[a].genome,
                    &state.archive[b].genome,
                    &mut rng,
                )
            } else {
                (
                    state.archive[a].genome.clone(),
                    state.archive[b].genome.clone(),
                )
            };
            if rng.gen_bool(self.config.mutation_prob) {
                self.variation.mutate(&mut c1, &mut rng);
            }
            if rng.gen_bool(self.config.mutation_prob) {
                self.variation.mutate(&mut c2, &mut rng);
            }
            genomes.push(c1);
            if genomes.len() < pop_size {
                genomes.push(c2);
            }
        }
        state.evaluations += genomes.len();
        state.population = evaluate(genomes, state.generation + 1);
        state.generation += 1;
        state.rng_state = rng.state_words();
        report(split);
        true
    }

    /// Evaluates one genome into an [`Individual`]. Pure with respect to
    /// the optimizer: no RNG, no shared state — safe to call from any
    /// worker thread.
    fn eval_one(&self, genome: P::Genome) -> Individual<P::Genome> {
        let Evaluation {
            objectives,
            violation,
        } = self.problem.evaluate(&genome);
        Individual {
            genome,
            objectives,
            violation,
        }
    }
}

/// Binary tournament: lower SPEA2 fitness wins.
fn tournament(fitness: &[f64], rng: &mut dyn RngCore) -> usize {
    let a = rng.gen_range(0..fitness.len());
    let b = rng.gen_range(0..fitness.len());
    if fitness[a] <= fitness[b] {
        a
    } else {
        b
    }
}

/// Fills this thread's selection scratch with the population's
/// objectives and violations (borrowed, no per-row clones) and runs `f`
/// on the scratch.
fn with_population_scratch<G, R>(
    pop: &[Individual<G>],
    f: impl FnOnce(&mut kernels::SelectionScratch) -> R,
) -> R {
    let cols = pop.first().map_or(0, |i| i.objectives.len());
    kernels::with_scratch(|s| {
        s.objectives
            .refill(cols, pop.iter().map(|i| i.objectives.as_slice()));
        s.violations.clear();
        s.violations.extend(pop.iter().map(|i| i.violation));
        f(s)
    })
}

/// SPEA2 fitness F(i) = R(i) + D(i): raw strength-based fitness plus the
/// k-nearest-neighbour density term (< 1 iff non-dominated). Computed on
/// the reusable flat buffers by [`kernels::spea2_fitness`]. Test-only:
/// the run loop gets the archive fitness from the cached selection pass.
#[cfg(test)]
fn spea2_fitness<G>(pop: &[Individual<G>]) -> Vec<f64> {
    with_population_scratch(pop, |s| {
        kernels::spea2_fitness(&s.objectives, &s.violations, &mut s.distances)
    })
}

/// Elapsed microseconds since `t`.
fn micros(t: Instant) -> u64 {
    t.elapsed().as_nanos() as u64 / 1_000
}

/// SPEA2 environmental selection of the archive from `union`: keep all
/// non-dominated (F < 1); truncate overflow by iteratively removing the
/// member with the lexicographically smallest sorted-distance vector;
/// fill underflow with the best dominated. Also returns the archive's
/// own SPEA2 fitness (the mating-tournament key).
///
/// Amortization, all bit-identical to a from-scratch rebuild:
///
/// - When `cache` still matches the union's trailing rows (the previous
///   archive, appended unchanged after the offspring), the
///   archive–archive distance block is reused via
///   [`DistanceMatrix::refill_with_tail`](crate::matrix::DistanceMatrix::refill_with_tail)
///   instead of recomputed — only offspring rows pay `sq_dist`.
/// - Fitness and truncation share one scratch session, so the pairwise
///   matrix built for the density estimate is the same cached matrix the
///   truncation rounds index ([`kernels::spea2_truncate`]).
/// - The survivor keep-mask compaction of that matrix *is* the archive's
///   own distance matrix (survivors keep their union order), so the
///   mating fitness is computed on it directly — the old second full
///   rebuild is gone — and it becomes the next generation's cache.
fn select_archive_cached<G>(
    union: Vec<Individual<G>>,
    target: usize,
    cache: &mut DistanceCache,
    split: &mut SelectionSplit,
) -> (Vec<Individual<G>>, Vec<f64>) {
    let chosen = with_population_scratch(&union, |s| {
        let t = Instant::now();
        if cache.matches_tail(&s.objectives) {
            s.distances.refill_with_tail(&s.objectives, &cache.matrix);
        } else {
            s.distances.refill(&s.objectives);
        }
        split.dist_us += micros(t);
        let t = Instant::now();
        let fitness = kernels::spea2_fitness_prefilled(&s.objectives, &s.violations, &s.distances);
        let mut order: Vec<usize> = (0..union.len()).collect();
        order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
        let nondom: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| fitness[i] < 1.0)
            .collect();
        split.sort_us += micros(t);
        let t = Instant::now();
        let chosen = if nondom.len() > target {
            kernels::spea2_truncate(&s.distances, nondom, target)
        } else {
            order.into_iter().take(target).collect()
        };
        split.truncate_us += micros(t);
        let t = Instant::now();
        let mut keep_rows = chosen.clone();
        keep_rows.sort_unstable();
        s.distances.compact(&keep_rows);
        split.dist_us += micros(t);
        chosen
    });
    let mut keep = vec![false; union.len()];
    for &i in &chosen {
        keep[i] = true;
    }
    let archive: Vec<Individual<G>> = union
        .into_iter()
        .zip(keep)
        .filter_map(|(ind, k)| k.then_some(ind))
        .collect();
    // Mating fitness on the compacted survivor matrix (== the archive's
    // own distance matrix), then hand that matrix to the cache for the
    // next generation.
    let t = Instant::now();
    let arch_fitness = with_population_scratch(&archive, |s| {
        let f = kernels::spea2_fitness_prefilled(&s.objectives, &s.violations, &s.distances);
        cache.store(&s.objectives, &mut s.distances);
        f
    });
    split.sort_us += micros(t);
    (archive, arch_fitness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    struct Schaffer;

    impl Problem for Schaffer {
        type Genome = f64;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn RngCore) -> f64 {
            rng.gen_range(-100.0f64..100.0)
        }

        fn evaluate(&self, x: &f64) -> Evaluation {
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
    }

    struct Gaussian;

    impl Variation<f64> for Gaussian {
        fn crossover(&self, a: &f64, b: &f64, rng: &mut dyn RngCore) -> (f64, f64) {
            let t: f64 = rng.gen_range(0.0..1.0);
            (t * a + (1.0 - t) * b, (1.0 - t) * a + t * b)
        }

        fn mutate(&self, x: &mut f64, rng: &mut dyn RngCore) {
            *x += rng.gen_range(-1.0f64..1.0);
        }
    }

    #[test]
    fn converges_to_schaffer_front() {
        let res = Spea2::new(Schaffer, Gaussian, Spea2Config::new(40, 60).with_seed(1)).run();
        assert!(!res.archive().is_empty());
        for ind in res.archive() {
            assert!(
                ind.genome > -1.0 && ind.genome < 3.0,
                "genome {} far off the Pareto set",
                ind.genome
            );
        }
        let front = res.front_objectives();
        assert!(
            front.len() >= 5,
            "front collapsed to {} points",
            front.len()
        );
    }

    #[test]
    fn archive_respects_size_bound() {
        let cfg = Spea2Config::new(30, 15).with_seed(2).with_archive_size(12);
        let res = Spea2::new(Schaffer, Gaussian, cfg).run();
        assert!(res.archive().len() <= 12);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = Spea2Config::new(20, 10).with_seed(7);
        let a = Spea2::new(Schaffer, Gaussian, cfg.clone()).run();
        let b = Spea2::new(Schaffer, Gaussian, cfg).run();
        assert_eq!(a.front_objectives(), b.front_objectives());
    }

    #[test]
    fn seeding_preserves_optimum() {
        let res = Spea2::new(Schaffer, Gaussian, Spea2Config::new(16, 4).with_seed(3))
            .with_seeds(vec![1.0])
            .run();
        let best: f64 = res
            .archive()
            .iter()
            .map(|i| i.objectives.iter().sum::<f64>())
            .fold(f64::MAX, f64::min);
        assert!(best <= 2.0 + 1e-9);
    }

    #[test]
    fn fitness_below_one_iff_nondominated() {
        let pop = vec![
            Individual {
                genome: 0.0,
                objectives: vec![1.0, 1.0],
                violation: 0.0,
            },
            Individual {
                genome: 0.0,
                objectives: vec![2.0, 2.0],
                violation: 0.0,
            },
            Individual {
                genome: 0.0,
                objectives: vec![0.5, 3.0],
                violation: 0.0,
            },
        ];
        let f = spea2_fitness(&pop);
        assert!(f[0] < 1.0);
        assert!(f[1] >= 1.0, "dominated point must have F ≥ 1: {}", f[1]);
        assert!(f[2] < 1.0);
    }

    #[test]
    fn evaluations_counted() {
        let cfg = Spea2Config::new(10, 5).with_seed(1);
        let res = Spea2::new(Schaffer, Gaussian, cfg).run();
        assert_eq!(res.evaluations, 10 + 5 * 10);
    }

    #[test]
    fn stepwise_equals_run() {
        let cfg = Spea2Config::new(18, 7).with_seed(11);
        let opt = Spea2::new(Schaffer, Gaussian, cfg);
        let direct = opt.run();
        let mut state = opt.init_state();
        let mut steps = 0;
        while opt.step(&mut state) {
            steps += 1;
        }
        let stepped = opt.finalize(state);
        assert_eq!(steps, 7);
        assert_eq!(direct.archive(), stepped.archive());
        assert_eq!(direct.evaluations, stepped.evaluations);
    }

    #[test]
    fn resume_from_snapshot_reproduces_run() {
        let cfg = Spea2Config::new(12, 5).with_seed(13);
        let opt = Spea2::new(Schaffer, Gaussian, cfg);
        let direct = opt.run();
        for k in 0..=5 {
            let mut state = opt.init_state();
            for _ in 0..k {
                opt.step(&mut state);
            }
            let snapshot = state.clone();
            drop(state);
            let resumed = opt.run_from(snapshot);
            assert_eq!(direct.archive(), resumed.archive(), "k={k}");
            assert_eq!(direct.evaluations, resumed.evaluations, "k={k}");
        }
    }

    #[test]
    fn cold_cache_matches_warm_cache_bitwise() {
        // Clearing the distance cache at arbitrary generation boundaries
        // must not change a single bit of the outcome — reuse is an
        // amortization, never a semantic.
        let cfg = Spea2Config::new(20, 8).with_seed(23);
        let opt = Spea2::new(Schaffer, Gaussian, cfg);
        let warm = opt.run();
        let mut state = opt.init_state();
        let mut g = 0usize;
        while opt.step(&mut state) {
            g += 1;
            if g.is_multiple_of(2) {
                state.dist_cache.clear();
            }
        }
        state.dist_cache.clear();
        let cold = opt.finalize(state);
        assert_eq!(warm.archive(), cold.archive());
        for (a, b) in warm
            .front_objectives()
            .iter()
            .flatten()
            .zip(cold.front_objectives().iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn step_past_end_is_noop() {
        let cfg = Spea2Config::new(8, 2).with_seed(1);
        let opt = Spea2::new(Schaffer, Gaussian, cfg);
        let mut state = opt.init_state();
        while opt.step(&mut state) {}
        let frozen = state.clone();
        assert!(!opt.step(&mut state));
        assert_eq!(state, frozen);
    }

    #[test]
    fn parallel_run_matches_serial_bitwise() {
        use clre_exec::ExecPool;
        let cfg = Spea2Config::new(16, 6).with_seed(17);
        let opt = Spea2::new(Schaffer, Gaussian, cfg);
        let serial = opt.run();
        for workers in [1, 2, 8] {
            let exec = Executor::new(ExecPool::new(workers));
            let par = opt.run_with(&exec);
            assert_eq!(serial.archive(), par.archive(), "workers={workers}");
            for (a, b) in serial
                .front_objectives()
                .iter()
                .flatten()
                .zip(par.front_objectives().iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
        }
    }
}

use clre_markov::ClrChainParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a Monte-Carlo task simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Number of simulated executions.
    pub runs: usize,
    /// Empirical mean execution time in seconds.
    pub mean_time: f64,
    /// Sample standard deviation of the execution time.
    pub time_std: f64,
    /// Fraction of executions that produced an erroneous result.
    pub error_rate: f64,
    /// Maximum observed execution time (tail behaviour the analytical
    /// mean hides).
    pub max_time: f64,
}

/// Monte-Carlo executor of a single task under one CLR configuration.
///
/// Walks exactly the per-interval semantics of the paper's Fig. 3 chains
/// (see the [crate docs](crate)); statistics converge to the analytical
/// predictions of [`clre_markov::clr::analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSimulator {
    params: ClrChainParams,
    /// Safety valve: a single execution aborts (counted as an error)
    /// after this many tolerance roll-backs, so degenerate
    /// perfect-retry configurations cannot hang the simulator.
    max_rollbacks: usize,
}

impl TaskSimulator {
    /// Creates a simulator for the given chain parameters.
    pub fn new(params: ClrChainParams) -> Self {
        TaskSimulator {
            params,
            max_rollbacks: 1_000_000,
        }
    }

    /// Sets the per-execution roll-back budget (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    #[must_use]
    pub fn with_max_rollbacks(mut self, max: usize) -> Self {
        assert!(max > 0, "roll-back budget must be positive");
        self.max_rollbacks = max;
        self
    }

    /// The simulated parameters.
    pub fn params(&self) -> &ClrChainParams {
        &self.params
    }

    /// Simulates one execution; returns `(time, erroneous)`.
    pub fn simulate_once(&self, rng: &mut StdRng) -> (f64, bool) {
        let p = &self.params;
        let k = p.intervals.max(1) as usize;
        let t_interval = p.exec_time / k as f64;
        let p_err = 1.0 - (-p.seu_rate * t_interval).exp();

        let mut time = 0.0;
        let mut erroneous = false;
        let mut rollbacks = 0usize;
        let mut interval = 0usize;
        while interval < k {
            // Useful execution plus always-on detection.
            time += t_interval + p.t_det;
            if rng.gen_bool(p_err) {
                // An SEU struck; walk the masking ladder.
                if rng.gen_bool(p.m_hw) {
                    // Masked in hardware.
                } else if rng.gen_bool(p.m_impl_ssw) {
                    // Implicitly masked by the system software.
                } else if rng.gen_bool(p.cov_det) {
                    // Detected; attempt tolerance (roll back this ICI).
                    time += p.t_tol;
                    if rng.gen_bool(p.m_tol) {
                        rollbacks += 1;
                        if rollbacks > self.max_rollbacks {
                            return (time, true);
                        }
                        continue; // re-execute the current interval
                    }
                    erroneous = true; // tolerance failed: error escapes
                } else if rng.gen_bool(p.m_asw) {
                    // Undetected but masked by information redundancy.
                } else {
                    erroneous = true; // escaped every layer
                }
            }
            // Interval completed (cleanly or with an escaped error —
            // timing-wise execution continues either way, as in the
            // timing chain of Fig. 3(a)).
            if interval + 1 < k {
                time += p.t_chk;
                if rng.gen_bool(p.p_chk_err) {
                    erroneous = true; // corrupted checkpoint
                }
            }
            interval += 1;
        }
        (time, erroneous)
    }

    /// Simulates `runs` executions with a seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn run(&self, runs: usize, seed: u64) -> SimResult {
        assert!(runs > 0, "at least one run is required");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_1E57);
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut errors = 0usize;
        let mut max_time = 0.0f64;
        for _ in 0..runs {
            let (t, e) = self.simulate_once(&mut rng);
            sum += t;
            sum_sq += t * t;
            errors += usize::from(e);
            max_time = max_time.max(t);
        }
        let mean = sum / runs as f64;
        let var = (sum_sq / runs as f64 - mean * mean).max(0.0);
        SimResult {
            runs,
            mean_time: mean,
            time_std: var.sqrt(),
            error_rate: errors as f64 / runs as f64,
            max_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_markov::clr::analyze;

    const RUNS: usize = 60_000;

    fn assert_agrees(params: ClrChainParams, label: &str) {
        let analytic = analyze(&params).expect("analyzable");
        let sim = TaskSimulator::new(params).run(RUNS, 42);
        // Binomial 4σ band for the error rate.
        let sigma = (analytic.error_prob * (1.0 - analytic.error_prob) / RUNS as f64)
            .sqrt()
            .max(1e-4);
        assert!(
            (sim.error_rate - analytic.error_prob).abs() < 4.0 * sigma + 1e-4,
            "{label}: error {} vs analytic {}",
            sim.error_rate,
            analytic.error_prob
        );
        // Mean time within 2% (t-statistics would be tighter; 2% is
        // robust against the heavy retry tail).
        assert!(
            (sim.mean_time / analytic.avg_exec_time - 1.0).abs() < 0.02,
            "{label}: time {} vs analytic {}",
            sim.mean_time,
            analytic.avg_exec_time
        );
    }

    #[test]
    fn unprotected_agrees() {
        assert_agrees(ClrChainParams::unprotected(300.0e-6, 300.0), "unprotected");
    }

    #[test]
    fn hw_and_asw_masking_agree() {
        assert_agrees(
            ClrChainParams {
                m_hw: 0.7,
                m_impl_ssw: 0.1,
                m_asw: 0.55,
                ..ClrChainParams::unprotected(300.0e-6, 500.0)
            },
            "masking",
        );
    }

    #[test]
    fn retry_agrees() {
        assert_agrees(
            ClrChainParams {
                cov_det: 0.9,
                m_tol: 0.97,
                t_det: 15.0e-6,
                t_tol: 6.0e-6,
                ..ClrChainParams::unprotected(300.0e-6, 800.0)
            },
            "retry",
        );
    }

    #[test]
    fn checkpointing_agrees() {
        assert_agrees(
            ClrChainParams {
                m_hw: 0.5,
                cov_det: 0.95,
                m_tol: 0.98,
                m_asw: 0.78,
                intervals: 3,
                t_det: 6.0e-6,
                t_tol: 3.0e-6,
                t_chk: 4.0e-6,
                p_chk_err: 1.0e-3,
                ..ClrChainParams::unprotected(300.0e-6, 1000.0)
            },
            "checkpointing",
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ClrChainParams {
            cov_det: 0.9,
            m_tol: 0.9,
            ..ClrChainParams::unprotected(1.0e-4, 400.0)
        };
        let a = TaskSimulator::new(p).run(1000, 5);
        let b = TaskSimulator::new(p).run(1000, 5);
        let c = TaskSimulator::new(p).run(1000, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn max_time_at_least_mean() {
        let p = ClrChainParams {
            cov_det: 0.95,
            m_tol: 0.95,
            ..ClrChainParams::unprotected(1.0e-4, 2000.0)
        };
        let r = TaskSimulator::new(p).run(5000, 1);
        assert!(r.max_time >= r.mean_time);
        assert!(r.time_std > 0.0);
    }

    #[test]
    fn rollback_budget_terminates_degenerate_configs() {
        // Perfect detection and tolerance at an absurd fault rate would
        // retry forever; the budget turns that into a (counted) error.
        let p = ClrChainParams {
            cov_det: 1.0,
            m_tol: 1.0,
            ..ClrChainParams::unprotected(1.0, 1.0e9)
        };
        let r = TaskSimulator::new(p).with_max_rollbacks(10).run(50, 1);
        assert_eq!(r.error_rate, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        TaskSimulator::new(ClrChainParams::unprotected(1e-4, 1.0)).run(0, 1);
    }
}

use crate::TaskSimulator;
use clre_markov::ClrChainParams;
use clre_model::{Platform, TaskGraph, TaskId};
use clre_sched::Mapping;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a Monte-Carlo application simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppSimResult {
    /// Number of simulated application iterations.
    pub iterations: usize,
    /// Empirical mean makespan in seconds.
    pub mean_makespan: f64,
    /// Fraction of iterations in which at least one task produced an
    /// erroneous result (series-system application error).
    pub error_rate: f64,
    /// Maximum observed makespan.
    pub max_makespan: f64,
}

/// Monte-Carlo replay of a mapped application.
///
/// Each iteration samples every task's execution time and error outcome
/// from its per-task simulator and replays the mapping's list schedule
/// with those *sampled* durations (same PE bindings and priority order).
/// The empirical error rate validates the series-system application error
/// probability; the empirical mean makespan is an upper validation bound
/// for the analytical average makespan (which schedules with per-task
/// *means* — Jensen's inequality on the schedule's `max`/`+` recursion
/// makes the sampled mean at least as large).
///
/// # Examples
///
/// See the workspace integration test `tests/simulation_validation.rs`.
#[derive(Debug)]
pub struct AppSimulator<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    mapping: &'a Mapping,
    simulators: Vec<TaskSimulator>,
}

impl<'a> AppSimulator<'a> {
    /// Creates an application simulator from per-task chain parameters
    /// (indexed by task id).
    ///
    /// # Panics
    ///
    /// Panics if `task_params.len()` differs from the graph's task count.
    pub fn new(
        graph: &'a TaskGraph,
        platform: &'a Platform,
        mapping: &'a Mapping,
        task_params: Vec<ClrChainParams>,
    ) -> Self {
        assert_eq!(
            task_params.len(),
            graph.task_count(),
            "one parameter set per task is required"
        );
        AppSimulator {
            graph,
            platform,
            mapping,
            simulators: task_params.into_iter().map(TaskSimulator::new).collect(),
        }
    }

    /// Simulates one application iteration; returns `(makespan, any_error)`.
    fn simulate_once(&self, rng: &mut StdRng) -> (f64, bool) {
        let n = self.graph.task_count();
        // Sample every task first.
        let mut times = vec![0.0f64; n];
        let mut any_error = false;
        for (t, slot) in times.iter_mut().enumerate() {
            let (time, err) = self.simulators[t].simulate_once(rng);
            *slot = time;
            any_error |= err;
        }
        // Replay the list schedule with the sampled durations.
        let mut priority_rank = vec![0usize; n];
        for (rank, &t) in self.mapping.priority().iter().enumerate() {
            priority_rank[t.index()] = rank;
        }
        let mut pe_free = vec![0.0f64; self.platform.pe_count()];
        let mut finish = vec![f64::NAN; n];
        let mut remaining: Vec<usize> = (0..n)
            .map(|t| self.graph.predecessors(TaskId::new(t as u32)).len())
            .collect();
        let mut ready: Vec<usize> = (0..n).filter(|&t| remaining[t] == 0).collect();
        let mut makespan = 0.0f64;
        let mut scheduled = 0usize;
        while scheduled < n {
            let (pos, &t) = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| priority_rank[t])
                .expect("DAG always has a ready task");
            ready.swap_remove(pos);
            let tid = TaskId::new(t as u32);
            let pe = self.mapping.pe_of(tid);
            let preds_done = self
                .graph
                .predecessor_edges(tid)
                .iter()
                .map(|&(p, volume)| {
                    let end = finish[p.index()];
                    match self.platform.interconnect() {
                        Some(noc) if self.mapping.pe_of(p) != pe => end + noc.transfer_time(volume),
                        _ => end,
                    }
                })
                .fold(0.0f64, f64::max);
            let start = pe_free[pe.index()].max(preds_done);
            let end = start + times[t];
            pe_free[pe.index()] = end;
            finish[t] = end;
            makespan = makespan.max(end);
            scheduled += 1;
            for &s in self.graph.successors(tid) {
                remaining[s.index()] -= 1;
                if remaining[s.index()] == 0 {
                    ready.push(s.index());
                }
            }
        }
        (makespan, any_error)
    }

    /// Simulates `iterations` application runs with a seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn run(&self, iterations: usize, seed: u64) -> AppSimResult {
        assert!(iterations > 0, "at least one iteration is required");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0A55_5117);
        let mut sum = 0.0f64;
        let mut errors = 0usize;
        let mut max_makespan = 0.0f64;
        for _ in 0..iterations {
            let (m, e) = self.simulate_once(&mut rng);
            sum += m;
            errors += usize::from(e);
            max_makespan = max_makespan.max(m);
        }
        AppSimResult {
            iterations,
            mean_makespan: sum / iterations as f64,
            error_rate: errors as f64 / iterations as f64,
            max_makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::platform::paper_platform;
    use clre_model::qos::TaskMetrics;
    use clre_model::{BaseImpl, PeId, PeTypeId, TaskType};
    use clre_sched::QosEvaluator;

    fn chain_graph(n: u32) -> TaskGraph {
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        let mut b = TaskGraph::builder("c", 1.0e-2).task_type(ty);
        for i in 0..n {
            b = b.task(&format!("t{i}"), "f").unwrap();
        }
        for i in 1..n {
            b = b.edge(i - 1, i);
        }
        b.build().unwrap()
    }

    fn params() -> ClrChainParams {
        ClrChainParams {
            m_hw: 0.5,
            cov_det: 0.9,
            m_tol: 0.95,
            t_det: 5.0e-6,
            t_tol: 2.0e-6,
            ..ClrChainParams::unprotected(2.0e-4, 400.0)
        }
    }

    fn mapping_for(graph: &TaskGraph) -> Mapping {
        let analytic = clre_markov::clr::analyze(&params()).unwrap();
        let metrics = TaskMetrics {
            min_exec_time: analytic.min_exec_time,
            avg_exec_time: analytic.avg_exec_time,
            error_prob: analytic.error_prob,
            eta: 3.0e8,
            power: 1.0,
            energy: analytic.avg_exec_time,
            peak_temp: 330.0,
        };
        Mapping::uniform(graph, PeId::new(0), metrics)
    }

    #[test]
    fn app_error_matches_series_product() {
        let g = chain_graph(8);
        let p = paper_platform();
        let m = mapping_for(&g);
        let sim = AppSimulator::new(&g, &p, &m, vec![params(); 8]);
        let empirical = sim.run(30_000, 3);
        let analytic = QosEvaluator::new(&p).evaluate(&g, &m).unwrap();
        let sigma = (analytic.error_prob * (1.0 - analytic.error_prob) / 30_000.0).sqrt();
        assert!(
            (empirical.error_rate - analytic.error_prob).abs() < 4.0 * sigma + 1e-3,
            "empirical {} vs analytic {}",
            empirical.error_rate,
            analytic.error_prob
        );
    }

    #[test]
    fn serial_chain_mean_makespan_matches_analytic() {
        // A serial chain's makespan is a plain sum, so Jensen's gap is
        // zero and the empirical mean must match the analytical value.
        let g = chain_graph(5);
        let p = paper_platform();
        let m = mapping_for(&g);
        let sim = AppSimulator::new(&g, &p, &m, vec![params(); 5]);
        let empirical = sim.run(30_000, 5);
        let analytic = QosEvaluator::new(&p).evaluate(&g, &m).unwrap();
        assert!(
            (empirical.mean_makespan / analytic.makespan - 1.0).abs() < 0.02,
            "empirical {} vs analytic {}",
            empirical.mean_makespan,
            analytic.makespan
        );
        assert!(empirical.max_makespan >= empirical.mean_makespan);
    }

    #[test]
    fn parallel_join_mean_makespan_at_least_analytic() {
        // max(·) of random completion times: Jensen ⇒ E[max] ≥ max(E).
        let ty = TaskType::new("f").with_impl(BaseImpl::new("i", PeTypeId::new(0), 1e5, 1e-9));
        let g = TaskGraph::builder("join", 1.0e-2)
            .task_type(ty)
            .task("a", "f")
            .unwrap()
            .task("b", "f")
            .unwrap()
            .task("c", "f")
            .unwrap()
            .edge(0, 2)
            .edge(1, 2)
            .build()
            .unwrap();
        let p = paper_platform();
        let analytic_task = clre_markov::clr::analyze(&params()).unwrap();
        let metrics = TaskMetrics {
            min_exec_time: analytic_task.min_exec_time,
            avg_exec_time: analytic_task.avg_exec_time,
            error_prob: analytic_task.error_prob,
            eta: 3.0e8,
            power: 1.0,
            energy: 1.0e-4,
            peak_temp: 330.0,
        };
        let m = Mapping::new(
            vec![PeId::new(0), PeId::new(1), PeId::new(0)],
            vec![metrics; 3],
            (0..3).map(TaskId::new).collect(),
        );
        let sim = AppSimulator::new(&g, &p, &m, vec![params(); 3]);
        let empirical = sim.run(20_000, 9);
        let analytic = QosEvaluator::new(&p).evaluate(&g, &m).unwrap();
        assert!(
            empirical.mean_makespan >= analytic.makespan * 0.999,
            "Jensen violated: {} < {}",
            empirical.mean_makespan,
            analytic.makespan
        );
    }

    #[test]
    #[should_panic(expected = "one parameter set per task")]
    fn parameter_count_must_match() {
        let g = chain_graph(3);
        let p = paper_platform();
        let m = mapping_for(&g);
        let _ = AppSimulator::new(&g, &p, &m, vec![params(); 2]);
    }
}

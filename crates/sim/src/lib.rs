//! Monte-Carlo fault-injection simulation for the CL(R)Early reproduction.
//!
//! The analytical task-level models of `clre-markov` predict a task's
//! average execution time and error probability under a cross-layer
//! reliability configuration. This crate provides an *independent*
//! validator: it injects single-event upsets stochastically and walks the
//! exact same per-interval semantics as the Markov chains of the paper's
//! Fig. 3 — execution, hardware masking, implicit system-software masking,
//! detection, tolerance with roll-back, application-software masking and
//! checkpoint corruption — and measures the empirical statistics.
//!
//! By the strong law of large numbers the empirical error rate converges
//! to the functional chain's `Error` absorption probability and the mean
//! simulated time to the timing chain's expected absorption time; the
//! test suites of this crate and of the workspace assert that agreement.
//!
//! An application-level simulator ([`AppSimulator`]) replays a scheduled
//! mapping with sampled task durations and error outcomes, validating the
//! system-level QoS estimates (series-system error probability; average
//! makespan as a lower bound on the empirical mean makespan, by Jensen's
//! inequality applied to the `max` in the schedule).
//!
//! # Examples
//!
//! ```
//! use clre_markov::clr::{analyze, ClrChainParams};
//! use clre_sim::TaskSimulator;
//!
//! # fn main() -> Result<(), clre_markov::MarkovError> {
//! let params = ClrChainParams {
//!     cov_det: 0.9, m_tol: 0.97, t_det: 10.0e-6, t_tol: 5.0e-6,
//!     ..ClrChainParams::unprotected(300.0e-6, 500.0)
//! };
//! let analytic = analyze(&params)?;
//! let empirical = TaskSimulator::new(params).run(20_000, 7);
//! assert!((empirical.error_rate - analytic.error_prob).abs() < 0.01);
//! assert!((empirical.mean_time / analytic.avg_exec_time - 1.0).abs() < 0.02);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod task;

pub use app::{AppSimResult, AppSimulator};
pub use task::{SimResult, TaskSimulator};

//! Dense linear algebra and special-function numerics for the CL(R)Early
//! workspace.
//!
//! The absorbing-Markov-chain analysis in [`clre-markov`] needs three
//! operations that the Rust standard library does not provide:
//!
//! * dense matrix arithmetic ([`Matrix`]),
//! * solving `A·x = b` and inverting small matrices via LU decomposition
//!   with partial pivoting ([`Lu`]),
//! * the Gamma function `Γ(x)` used by the Weibull lifetime model
//!   ([`gamma`]).
//!
//! Everything is implemented from scratch on `f64`; the matrices involved in
//! CL(R)Early are tiny (a cross-layer reliability Markov chain has on the
//! order of ten states), so a straightforward `O(n³)` LU is both adequate
//! and easy to audit.
//!
//! # Examples
//!
//! ```
//! use clre_num::{Matrix, gamma};
//!
//! # fn main() -> Result<(), clre_num::NumError> {
//! let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
//! let inv = a.inverse()?;
//! let id = a.mul(&inv)?;
//! assert!((id.get(0, 0) - 1.0).abs() < 1e-12);
//! assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```
//!
//! [`clre-markov`]: https://example.invalid/clrearly

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gamma_fn;
mod lu;
mod matrix;
pub mod util;

pub use error::NumError;
pub use gamma_fn::{gamma, ln_gamma};
pub use lu::Lu;
pub use matrix::Matrix;

//! The Gamma function via the Lanczos approximation.
//!
//! CL(R)Early's lifetime model needs `MTTF = η · Γ(1 + 1/β)` for Weibull
//! shape parameters `β` typically in `[0.5, 5]`, i.e. arguments in
//! `[1.2, 3]` where the Lanczos approximation is accurate to ~15 digits.

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's values).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Computes the Gamma function `Γ(x)` for real `x`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`. Poles at
/// non-positive integers return `f64::NAN`.
///
/// # Examples
///
/// ```
/// use clre_num::gamma;
///
/// assert!((gamma(1.0) - 1.0).abs() < 1e-13);
/// assert!((gamma(5.0) - 24.0).abs() < 1e-10);
/// // Weibull: Γ(1 + 1/β) for β = 2 is Γ(1.5) = √π/2.
/// let g = gamma(1.5);
/// assert!((g - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-13);
/// ```
pub fn gamma(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 && x.fract() == 0.0 {
        return f64::NAN; // poles at 0, -1, -2, ...
    }
    if x < 0.5 {
        // Reflection formula: Γ(x)·Γ(1−x) = π / sin(πx).
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS_COEF[0];
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + LANCZOS_G + 0.5;
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
    }
}

/// Computes `ln Γ(x)` for `x > 0`.
///
/// Useful when `Γ(x)` itself would overflow (roughly `x > 171`).
///
/// # Examples
///
/// ```
/// use clre_num::ln_gamma;
///
/// // ln Γ(200) is finite even though Γ(200) overflows f64.
/// assert!(ln_gamma(200.0).is_finite());
/// assert!((ln_gamma(4.0) - 6f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if x.is_nan() || x <= 0.0 {
        return f64::NAN;
    }
    if x < 0.5 {
        let s = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - s.ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_rel(a: f64, b: f64, tol: f64) {
        assert!(
            ((a - b) / b).abs() < tol,
            "relative error too large: {a} vs {b}"
        );
    }

    #[test]
    fn integer_factorials() {
        for n in 1u32..=10 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert_rel(gamma(n as f64), fact.max(1.0), 1e-12);
        }
    }

    #[test]
    fn half_integer_values() {
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert_rel(gamma(0.5), sqrt_pi, 1e-12);
        assert_rel(gamma(1.5), sqrt_pi / 2.0, 1e-12);
        assert_rel(gamma(2.5), 3.0 * sqrt_pi / 4.0, 1e-12);
    }

    #[test]
    fn reflection_for_negative_arguments() {
        // Γ(-0.5) = -2√π
        assert_rel(gamma(-0.5), -2.0 * std::f64::consts::PI.sqrt(), 1e-11);
    }

    #[test]
    fn poles_return_nan() {
        assert!(gamma(0.0).is_nan());
        assert!(gamma(-3.0).is_nan());
        assert!(gamma(f64::NAN).is_nan());
    }

    #[test]
    fn ln_gamma_consistent_with_gamma() {
        for &x in &[0.7, 1.3, 2.5, 10.0, 50.0] {
            assert_rel(ln_gamma(x), gamma(x).ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_domain() {
        assert!(ln_gamma(-1.0).is_nan());
        assert!(ln_gamma(0.0).is_nan());
        assert!(ln_gamma(200.0).is_finite());
    }

    #[test]
    fn weibull_range_recurrence() {
        // Γ(x+1) = x·Γ(x) over the range used by the lifetime model.
        let mut x = 1.05;
        while x < 3.0 {
            assert_rel(gamma(x + 1.0), x * gamma(x), 1e-11);
            x += 0.1;
        }
    }
}

use crate::{Matrix, NumError};

/// LU decomposition with partial pivoting: `P·A = L·U`.
///
/// Factor once with [`Lu::factor`], then reuse the factorization for
/// multiple right-hand sides via [`Lu::solve`], for the full inverse via
/// [`Lu::inverse`], or for the determinant via [`Lu::det`]. This is the
/// workhorse behind the fundamental-matrix computation `N = (I − Q)⁻¹` in
/// the Markov-chain analysis.
///
/// # Examples
///
/// ```
/// use clre_num::{Lu, Matrix};
///
/// # fn main() -> Result<(), clre_num::NumError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[4.0, 3.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// assert!((lu.det() + 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the source row of pivoted row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, `+1.0` or `-1.0`.
    sign: f64,
}

/// Pivots smaller than this (relative to the column's max) are treated as
/// singular.
const PIVOT_EPS: f64 = 1e-304;

impl Lu {
    /// Factors `a` as `P·a = L·U`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] if `a` is rectangular and
    /// [`NumError::Singular`] if a pivot underflows.
    pub fn factor(a: &Matrix) -> Result<Self, NumError> {
        Self::factor_with(a, None)
    }

    /// Factors `a` with *scaled* partial pivoting (implicit row
    /// equilibration): the pivot row maximizes `|a_ri| / s_r` where
    /// `s_r = max_j |a_rj|`, instead of the raw magnitude used by
    /// [`Lu::factor`].
    ///
    /// Scaled pivoting resists the accuracy loss plain partial pivoting
    /// suffers on badly row-scaled systems — e.g. the near-singular
    /// probability blocks `I − Q` of long Markov chains, where one row's
    /// entries can dwarf another's by many orders of magnitude. The
    /// returned factorization is used identically ([`Lu::solve`],
    /// [`Lu::inverse`], [`Lu::det`]).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] if `a` is rectangular and
    /// [`NumError::Singular`] if a row is entirely (near-)zero or a
    /// scaled pivot underflows.
    pub fn factor_scaled(a: &Matrix) -> Result<Self, NumError> {
        if !a.is_square() {
            return Err(NumError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut scales = vec![0.0f64; n];
        for (r, s) in scales.iter_mut().enumerate() {
            for c in 0..n {
                *s = s.max(a.get(r, c).abs());
            }
            if *s < PIVOT_EPS {
                // An all-zero row can never host a pivot.
                return Err(NumError::Singular { pivot: r });
            }
        }
        Self::factor_with(a, Some(scales))
    }

    /// Shared elimination kernel: with `scales`, pivot selection
    /// maximizes the scale-relative magnitude `|a_ri| / s_r`.
    fn factor_with(a: &Matrix, mut scales: Option<Vec<f64>>) -> Result<Self, NumError> {
        if !a.is_square() {
            return Err(NumError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Partial pivoting: find the largest (scale-relative) magnitude
            // entry in/below the diagonal.
            let weight = |r: usize, s: &Option<Vec<f64>>| {
                let v = lu.get(r, col).abs();
                match s {
                    Some(scales) => v / scales[r],
                    None => v,
                }
            };
            let mut pivot_row = col;
            let mut pivot_val = weight(col, &scales);
            for r in (col + 1)..n {
                let v = weight(r, &scales);
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_EPS {
                return Err(NumError::Singular { pivot: col });
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = lu.get(col, c);
                    lu.set(col, c, lu.get(pivot_row, c));
                    lu.set(pivot_row, c, tmp);
                }
                perm.swap(col, pivot_row);
                if let Some(scales) = scales.as_mut() {
                    scales.swap(col, pivot_row);
                }
                sign = -sign;
            }
            let diag = lu.get(col, col);
            for r in (col + 1)..n {
                let factor = lu.get(r, col) / diag;
                lu.set(r, col, factor);
                for c in (col + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(col, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    #[allow(clippy::needless_range_loop)] // triangular solves read clearest indexed
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumError::DimensionMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "solve",
            });
        }
        // Forward substitution on the permuted RHS (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu.get(i, j) * y[j];
            }
            y[i] = acc;
        }
        // Back substitution with U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Computes the full inverse, one solve per unit vector.
    ///
    /// # Errors
    ///
    /// Never fails for a successfully factored matrix, but keeps the
    /// `Result` signature so callers can use `?` uniformly.
    pub fn inverse(&self) -> Result<Matrix, NumError> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve(&e)?;
            e[col] = 0.0;
            for (row, v) in x.into_iter().enumerate() {
                inv.set(row, col, v);
            }
        }
        Ok(inv)
    }

    /// Returns the determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu.get(i, i);
        }
        d
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::factor(&a), Err(NumError::NotSquare { .. })));
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::factor(&a), Err(NumError::Singular { .. })));
    }

    #[test]
    fn solve_simple_system() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let x = a.solve(&[9.0, 8.0]).unwrap();
        assert_close(x[0], 2.0);
        assert_close(x[1], 3.0);
    }

    #[test]
    fn solve_requires_matching_rhs() {
        let a = Matrix::identity(3);
        let lu = Lu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert_eq!(lu.dim(), 3);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let id = a.mul(&inv).unwrap();
        assert!(id.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_close(Lu::factor(&a).unwrap().det(), -2.0);
        let b = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[0.0, 0.0, 5.0]]).unwrap();
        assert_close(Lu::factor(&b).unwrap().det(), 30.0);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert_close(x[0], 7.0);
        assert_close(x[1], 5.0);
        assert_close(Lu::factor(&a).unwrap().det(), -1.0);
    }

    #[test]
    fn scaled_factor_matches_plain_on_well_conditioned_input() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        let plain = Lu::factor(&a).unwrap();
        let scaled = Lu::factor_scaled(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let xp = plain.solve(&b).unwrap();
        let xs = scaled.solve(&b).unwrap();
        for (p, s) in xp.iter().zip(&xs) {
            assert_close(*p, *s);
        }
        assert_close(plain.det(), scaled.det());
    }

    #[test]
    fn scaled_factor_rejects_rectangular_and_zero_rows() {
        assert!(matches!(
            Lu::factor_scaled(&Matrix::zeros(2, 3)),
            Err(NumError::NotSquare { .. })
        ));
        let zero_row = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 0.0]]).unwrap();
        assert!(matches!(
            Lu::factor_scaled(&zero_row),
            Err(NumError::Singular { pivot: 1 })
        ));
        let dependent = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            Lu::factor_scaled(&dependent),
            Err(NumError::Singular { .. })
        ));
    }

    #[test]
    fn scaled_pivoting_rescues_badly_row_scaled_system() {
        // Forsythe–Moler style example: raw partial pivoting keeps the
        // huge first row as pivot and catastrophically cancels x₀, while
        // scale-relative pivoting swaps in the small row and stays exact.
        // Exact solution is x ≈ [1, 1] (to within 1e-17).
        let a = Matrix::from_rows(&[&[2.0, 2.0e17], &[1.0, 1.0]]).unwrap();
        let b = [2.0e17, 2.0];
        let plain = Lu::factor(&a).unwrap().solve(&b).unwrap();
        let scaled = Lu::factor_scaled(&a).unwrap().solve(&b).unwrap();
        assert!(
            (plain[0] - 1.0).abs() > 0.5,
            "plain pivoting unexpectedly accurate: {plain:?}"
        );
        assert!((scaled[0] - 1.0).abs() < 1e-10, "{scaled:?}");
        assert!((scaled[1] - 1.0).abs() < 1e-10, "{scaled:?}");
    }

    #[test]
    fn scaled_inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[1.0e6, 2.0e6], &[3.0, -1.0]]).unwrap();
        let inv = Lu::factor_scaled(&a).unwrap().inverse().unwrap();
        let id = a.mul(&inv).unwrap();
        assert!(id.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-9);
    }
}

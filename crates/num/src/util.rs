//! Small numeric utilities shared across the workspace: compensated
//! summation, approximate comparison, and clamped probabilities.

/// Kahan–Babuška compensated sum of an iterator of `f64`.
///
/// The QoS estimators accumulate many small per-task quantities; compensated
/// summation keeps the rounding error independent of the task count.
///
/// # Examples
///
/// ```
/// use clre_num::util::kahan_sum;
///
/// let xs = vec![1e16, 1.0, -1e16];
/// assert_eq!(kahan_sum(xs.iter().copied()), 1.0);
/// ```
pub fn kahan_sum<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let mut sum = 0.0;
    let mut comp = 0.0;
    for x in xs {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            comp += (sum - t) + x;
        } else {
            comp += (x - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

/// Returns `true` when `a` and `b` agree to within `tol` absolutely or
/// relatively (whichever is looser).
///
/// # Examples
///
/// ```
/// use clre_num::util::approx_eq;
///
/// assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

/// Clamps `p` into the closed probability interval `[0, 1]`.
///
/// Markov-chain arithmetic can produce values like `1.0 + 2e-16`; clamping
/// keeps downstream logic (e.g. `1 − p`) well-behaved. `NaN` maps to `0.0`.
///
/// # Examples
///
/// ```
/// use clre_num::util::clamp_prob;
///
/// assert_eq!(clamp_prob(1.0 + 1e-15), 1.0);
/// assert_eq!(clamp_prob(-0.25), 0.0);
/// assert_eq!(clamp_prob(f64::NAN), 0.0);
/// ```
pub fn clamp_prob(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// Linear interpolation between `a` and `b` at parameter `t ∈ [0, 1]`.
///
/// # Examples
///
/// ```
/// assert_eq!(clre_num::util::lerp(0.0, 10.0, 0.25), 2.5);
/// ```
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_cancellation() {
        let xs = [1e16, 3.25, -1e16, 2.0];
        let naive: f64 = xs.iter().sum();
        let kahan = kahan_sum(xs.iter().copied());
        assert!((kahan - 5.25).abs() < 1e-12);
        // The naive sum loses the small addends entirely on this input.
        assert!((naive - 5.25).abs() > (kahan - 5.25).abs());
    }

    #[test]
    fn kahan_empty_is_zero() {
        assert_eq!(kahan_sum(std::iter::empty()), 0.0);
    }

    #[test]
    fn approx_eq_relative_mode() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.001e12, 1e-9));
    }

    #[test]
    fn clamp_prob_bounds() {
        assert_eq!(clamp_prob(0.5), 0.5);
        assert_eq!(clamp_prob(2.0), 1.0);
        assert_eq!(clamp_prob(-1.0), 0.0);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 8.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 8.0, 1.0), 8.0);
    }
}

use std::error::Error;
use std::fmt;

/// Error type for the numeric routines in this crate.
///
/// # Examples
///
/// ```
/// use clre_num::{Matrix, NumError};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
/// let b = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
/// assert!(matches!(a.mul(&b), Err(NumError::DimensionMismatch { .. })));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// The offending shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be factored.
    Singular {
        /// Pivot column at which factorization broke down.
        pivot: usize,
    },
    /// A constructor was given rows of unequal length or no rows at all.
    RaggedRows,
    /// An argument was outside the function's domain.
    Domain {
        /// Human-readable description of the violated requirement.
        what: &'static str,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::DimensionMismatch { left, right, op } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NumError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            NumError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumError::RaggedRows => write!(f, "rows must be non-empty and of equal length"),
            NumError::Domain { what } => write!(f, "argument out of domain: {what}"),
        }
    }
}

impl Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NumError::DimensionMismatch {
                left: (1, 2),
                right: (3, 4),
                op: "mul",
            },
            NumError::NotSquare { shape: (2, 3) },
            NumError::Singular { pivot: 1 },
            NumError::RaggedRows,
            NumError::Domain { what: "x > 0" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumError>();
    }
}

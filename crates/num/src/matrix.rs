use crate::{Lu, NumError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major `f64` matrix.
///
/// Sized for the small systems that arise in CL(R)Early's Markov-chain
/// analysis (typically fewer than twenty states). All fallible operations
/// return [`NumError`] rather than panicking, except for indexed accessors
/// which document their panics.
///
/// # Examples
///
/// ```
/// use clre_num::Matrix;
///
/// # fn main() -> Result<(), clre_num::NumError> {
/// let a = Matrix::identity(3);
/// let b = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]])?;
/// let c = a.mul(&b)?;
/// assert_eq!(c, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// let z = clre_num::Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z.get(1, 2), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// let id = clre_num::Matrix::identity(2);
    /// assert_eq!(id.get(0, 0), 1.0);
    /// assert_eq!(id.get(0, 1), 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::RaggedRows`] if `rows` is empty, any row is
    /// empty, or the rows have differing lengths.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), clre_num::NumError> {
    /// let m = clre_num::Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// assert_eq!(m.get(1, 0), 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(NumError::RaggedRows);
        }
        let ncols = rows[0].len();
        if ncols == 0 || rows.iter().any(|r| r.len() != ncols) {
            return Err(NumError::RaggedRows);
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::RaggedRows`] if `data.len() != rows * cols` or
    /// either dimension is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), clre_num::NumError> {
    /// let m = clre_num::Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0])?;
    /// assert_eq!(m, clre_num::Matrix::identity(2));
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NumError> {
        if rows == 0 || cols == 0 || data.len() != rows * cols {
            return Err(NumError::RaggedRows);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Returns the shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the underlying row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), clre_num::NumError> {
    /// let m = clre_num::Matrix::from_rows(&[&[1.0, 2.0, 3.0]])?;
    /// assert_eq!(m.transpose().shape(), (3, 1));
    /// # Ok(())
    /// # }
    /// ```
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, NumError> {
        if self.cols != rhs.rows {
            return Err(NumError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "mul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if `v.len() != self.cols`.
    #[allow(clippy::needless_range_loop)] // dense kernel reads clearest indexed
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, NumError> {
        if v.len() != self.cols {
            return Err(NumError::DimensionMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "mul_vec",
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for c in 0..self.cols {
                acc += self.get(i, c) * v[c];
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, NumError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, NumError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, NumError> {
        if self.shape() != rhs.shape() {
            return Err(NumError::DimensionMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op,
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Solves `self · x = b` via LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] for rectangular matrices,
    /// [`NumError::DimensionMismatch`] if `b.len() != rows`, and
    /// [`NumError::Singular`] if the matrix cannot be factored.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), clre_num::NumError> {
    /// let a = clre_num::Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]])?;
    /// let x = a.solve(&[2.0, 8.0])?;
    /// assert_eq!(x, vec![1.0, 2.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumError> {
        Lu::factor(self)?.solve(b)
    }

    /// Like [`Matrix::solve`] but factoring with scaled partial pivoting
    /// ([`Lu::factor_scaled`]) — the retry path for badly row-scaled
    /// systems where plain pivoting loses accuracy or misdeclares
    /// singularity.
    ///
    /// # Errors
    ///
    /// As for [`Matrix::solve`].
    pub fn solve_scaled(&self, b: &[f64]) -> Result<Vec<f64>, NumError> {
        Lu::factor_scaled(self)?.solve(b)
    }

    /// Computes the inverse via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] for rectangular matrices and
    /// [`NumError::Singular`] if the matrix cannot be inverted.
    pub fn inverse(&self) -> Result<Matrix, NumError> {
        Lu::factor(self)?.inverse()
    }

    /// Like [`Matrix::inverse`] but factoring with scaled partial
    /// pivoting ([`Lu::factor_scaled`]).
    ///
    /// # Errors
    ///
    /// As for [`Matrix::inverse`].
    pub fn inverse_scaled(&self) -> Result<Matrix, NumError> {
        Lu::factor_scaled(self)?.inverse()
    }

    /// Largest absolute element difference to `rhs`, or `None` when the
    /// shapes differ. Useful for approximate comparisons in tests.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Option<f64> {
        if self.shape() != rhs.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Result<Matrix, NumError>;

    fn add(self, rhs: &Matrix) -> Self::Output {
        Matrix::add(self, rhs)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Result<Matrix, NumError>;

    fn sub(self, rhs: &Matrix) -> Self::Output {
        Matrix::sub(self, rhs)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Result<Matrix, NumError>;

    fn mul(self, rhs: &Matrix) -> Self::Output {
        Matrix::mul(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert_eq!(Matrix::from_rows(&[]), Err(NumError::RaggedRows));
        assert_eq!(
            Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]),
            Err(NumError::RaggedRows)
        );
        let empty: &[f64] = &[];
        assert_eq!(Matrix::from_rows(&[empty]), Err(NumError::RaggedRows));
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul(&b),
            Err(NumError::DimensionMismatch { op: "mul", .. })
        ));
    }

    #[test]
    fn mul_vec_works() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(
            a.add(&b).unwrap(),
            Matrix::from_rows(&[&[4.0, 7.0]]).unwrap()
        );
        assert_eq!(
            b.sub(&a).unwrap(),
            Matrix::from_rows(&[&[2.0, 3.0]]).unwrap()
        );
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]).unwrap());
    }

    #[test]
    fn operator_impls_delegate() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        assert_eq!((&a + &b).unwrap(), a.scale(2.0));
        assert_eq!((&a - &b).unwrap(), Matrix::zeros(2, 2));
        assert_eq!((&a * &b).unwrap(), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn display_is_readable() {
        let a = Matrix::identity(2);
        let s = a.to_string();
        assert!(s.contains("1.000000"));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn max_abs_diff_none_on_shape_mismatch() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert_eq!(a.max_abs_diff(&b), None);
        assert_eq!(a.max_abs_diff(&a), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(0, 1);
    }
}

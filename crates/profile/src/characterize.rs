use clre_model::application::SysSw;
use clre_model::platform::PeKind;
use clre_model::{BaseImpl, Platform};
use serde::{Deserialize, Serialize};

/// Deterministic synthetic characterization of task types.
///
/// Plays the role of running Gem5/McPAT over each task type's source code:
/// given a task-type index and a platform, it produces one or more
/// [`BaseImpl`]s per PE type with cycle counts and switched capacitances
/// drawn from a seeded hash — reproducible across runs and machines, with
/// no RNG state to thread through callers.
///
/// Accelerator (reconfigurable-region) implementations get a 2–4×
/// cycle-count reduction but higher switched capacitance, mirroring the
/// usual FPGA-offload trade-off. When `impl_variants > 1`, processors also
/// receive an RTOS-hosted variant with a small implicit system-software
/// masking factor (the OS recovers some crashes transparently).
///
/// # Examples
///
/// ```
/// use clre_model::platform::paper_platform;
/// use clre_profile::SyntheticCharacterizer;
///
/// let plat = paper_platform();
/// let ch = SyntheticCharacterizer::new(42);
/// let impls = ch.impls_for_type(0, &plat);
/// assert_eq!(impls.len(), plat.pe_types().len()); // one per PE type
/// // Deterministic: same seed, same characterization.
/// assert_eq!(impls, SyntheticCharacterizer::new(42).impls_for_type(0, &plat));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticCharacterizer {
    seed: u64,
    impl_variants: u32,
}

impl SyntheticCharacterizer {
    /// Creates a characterizer producing one implementation per PE type.
    pub fn new(seed: u64) -> Self {
        SyntheticCharacterizer {
            seed,
            impl_variants: 1,
        }
    }

    /// Sets the number of implementation variants per processor PE type
    /// (builder style). Variant 0 is bare-metal; subsequent variants are
    /// RTOS-hosted with growing cycle overhead and implicit SSW masking.
    ///
    /// # Panics
    ///
    /// Panics if `variants == 0`.
    #[must_use]
    pub fn with_impl_variants(mut self, variants: u32) -> Self {
        assert!(variants > 0, "at least one variant is required");
        self.impl_variants = variants;
        self
    }

    /// The seed this characterizer was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Characterizes task type `type_index` on every PE type of `platform`.
    ///
    /// Returns one [`BaseImpl`] per `(PE type, variant)` pair; the result is
    /// a pure function of `(seed, type_index, platform shape)`.
    pub fn impls_for_type(&self, type_index: u32, platform: &Platform) -> Vec<BaseImpl> {
        let mut out = Vec::new();
        for (pt_idx, pt) in platform.pe_types().iter().enumerate() {
            let mut h = mix(self.seed, type_index as u64, pt_idx as u64);
            // Base workload: 1·10⁵ … 9·10⁵ cycles — a few hundred µs at the
            // platform's clock rates, matching Fig. 6(a)'s x-axis.
            let base_cycles = 1.0e5 + unit(&mut h) * 8.0e5;
            // Switched capacitance: 0.6 … 1.4 nF.
            let base_cap = (0.6 + unit(&mut h) * 0.8) * 1.0e-9;
            // Code + state footprint: 16 … 128 KiB.
            let base_mem = (16.0 + unit(&mut h) * 112.0) * 1024.0;
            match pt.kind() {
                PeKind::ReconfigurableRegion => {
                    // Accelerators: 2–4× fewer cycles, 1.5–2.5× capacitance.
                    let speedup = 2.0 + unit(&mut h) * 2.0;
                    let cap_blowup = 1.5 + unit(&mut h);
                    out.push(
                        BaseImpl::new(
                            format!("tt{type_index}-{}-accel", pt.name()),
                            clre_model::PeTypeId::new(pt_idx as u32),
                            base_cycles / speedup,
                            base_cap * cap_blowup,
                        )
                        .with_memory_bytes(base_mem * 0.6),
                    );
                }
                PeKind::Processor => {
                    for variant in 0..self.impl_variants {
                        let (suffix, overhead, sys_sw, implicit) = if variant == 0 {
                            ("bare", 1.0, SysSw::BareMetal, 0.0)
                        } else {
                            // Each RTOS variant is a different algorithm /
                            // language binding: more cycles, more implicit
                            // masking from the managed runtime.
                            (
                                "rtos",
                                1.0 + 0.15 * variant as f64,
                                SysSw::Rtos,
                                (0.04 * variant as f64).min(0.2),
                            )
                        };
                        out.push(
                            BaseImpl::new(
                                format!("tt{type_index}-{}-{suffix}{variant}", pt.name()),
                                clre_model::PeTypeId::new(pt_idx as u32),
                                base_cycles * overhead,
                                base_cap,
                            )
                            .with_sys_sw(sys_sw)
                            .with_implicit_ssw_masking(implicit)
                            .with_memory_bytes(base_mem * overhead),
                        );
                    }
                }
            }
        }
        out
    }
}

/// SplitMix64 step — the standard 64-bit finalizer-based PRNG, good enough
/// for deterministic synthetic data.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeds a per-(type, pe-type) stream.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut s =
        seed ^ a.wrapping_mul(0xA076_1D64_78BD_642F) ^ b.wrapping_mul(0xE703_7ED1_A0B4_28DB);
    // Warm up once so adjacent seeds decorrelate.
    splitmix64(&mut s);
    s
}

/// Next uniform value in `[0, 1)`.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre_model::platform::paper_platform;

    #[test]
    fn deterministic_per_seed() {
        let p = paper_platform();
        let a = SyntheticCharacterizer::new(7).impls_for_type(3, &p);
        let b = SyntheticCharacterizer::new(7).impls_for_type(3, &p);
        let c = SyntheticCharacterizer::new(8).impls_for_type(3, &p);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn different_types_differ() {
        let p = paper_platform();
        let ch = SyntheticCharacterizer::new(7);
        assert_ne!(ch.impls_for_type(0, &p), ch.impls_for_type(1, &p));
    }

    #[test]
    fn one_impl_per_pe_type_by_default() {
        let p = paper_platform();
        let impls = SyntheticCharacterizer::new(1).impls_for_type(0, &p);
        assert_eq!(impls.len(), 3);
        // Each references a distinct PE type.
        let mut types: Vec<u32> = impls.iter().map(|i| i.pe_type().0).collect();
        types.dedup();
        assert_eq!(types.len(), 3);
    }

    #[test]
    fn variants_add_rtos_impls_on_processors_only() {
        let p = paper_platform();
        let impls = SyntheticCharacterizer::new(1)
            .with_impl_variants(3)
            .impls_for_type(0, &p);
        // 2 processor types × 3 variants + 1 PR type × 1 = 7.
        assert_eq!(impls.len(), 7);
        let rtos = impls.iter().filter(|i| i.sys_sw() == SysSw::Rtos).count();
        assert_eq!(rtos, 4);
        // RTOS variants carry implicit masking; bare-metal does not.
        for i in &impls {
            match i.sys_sw() {
                SysSw::Rtos => assert!(i.implicit_ssw_masking() > 0.0),
                SysSw::BareMetal => assert_eq!(i.implicit_ssw_masking(), 0.0),
            }
        }
    }

    #[test]
    fn accelerator_is_faster_but_hungrier() {
        let p = paper_platform();
        let impls = SyntheticCharacterizer::new(11).impls_for_type(2, &p);
        let pr_type = p.pe_type_by_name("pr-region").unwrap();
        let accel = impls.iter().find(|i| i.pe_type() == pr_type).unwrap();
        let procs: Vec<_> = impls.iter().filter(|i| i.pe_type() != pr_type).collect();
        for pimpl in procs {
            assert!(accel.cycles() < pimpl.cycles());
        }
        assert!(accel.capacitance() > 0.9e-9);
    }

    #[test]
    fn cycles_within_documented_range() {
        let p = paper_platform();
        let ch = SyntheticCharacterizer::new(3);
        for ty in 0..20 {
            for imp in ch.impls_for_type(ty, &p) {
                assert!(imp.cycles() > 2.0e4 && imp.cycles() < 1.0e6);
                assert!(imp.capacitance() > 0.5e-9 && imp.capacitance() < 4.0e-9);
                assert!(imp.memory_bytes() > 8.0 * 1024.0 && imp.memory_bytes() < 256.0 * 1024.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one variant")]
    fn zero_variants_panics() {
        let _ = SyntheticCharacterizer::new(0).with_impl_variants(0);
    }
}

//! Synthetic characterization substrate — the reproduction's stand-in for
//! the paper's Gem5 + McPAT tool flow.
//!
//! The paper estimates each task type's execution cycles and power with
//! Gem5/McPAT and derives soft-error rates, temperature and aging stress
//! from them. This crate provides the same *interface* with closed-form,
//! physically shaped models:
//!
//! * dynamic power `P = C·V²·f` plus voltage-proportional leakage
//!   ([`ProfileModel::power`]),
//! * soft-error (SEU) rate that grows exponentially as the supply voltage
//!   drops ([`ProfileModel::seu_rate`]), following the low-voltage
//!   susceptibility model of Das et al. (DATE'14),
//! * steady-state temperature `T = T_amb + R_th·P`
//!   ([`ProfileModel::steady_temp`]),
//! * Arrhenius-scaled Weibull aging `η(T) = A·exp(E_a / k_B·T)`
//!   ([`ProfileModel::eta_at`]).
//!
//! Because the DSE layers consume only the resulting metric tuples, any
//! monotone generator with these shapes exercises exactly the same code
//! paths as the authors' tool flow (see DESIGN.md §2 for the substitution
//! argument).
//!
//! # Examples
//!
//! ```
//! use clre_model::DvfsMode;
//! use clre_profile::ProfileModel;
//!
//! let model = ProfileModel::default();
//! let fast = DvfsMode::new("1.2V/900MHz", 1.2, 900.0e6);
//! let slow = DvfsMode::new("1.06V/300MHz", 1.06, 300.0e6);
//! let a = model.operating_point(3.0e5, 1.0e-9, &fast);
//! let b = model.operating_point(3.0e5, 1.0e-9, &slow);
//! assert!(a.exec_time < b.exec_time);   // faster clock
//! assert!(a.power > b.power);           // but hotter and hungrier
//! assert!(a.seu_rate < b.seu_rate);     // low voltage raises the SEU rate
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod characterize;
mod model;

pub use characterize::SyntheticCharacterizer;
pub use model::{OperatingPoint, ProfileModel};

/// Boltzmann constant in eV/K, used by the Arrhenius aging model.
pub const BOLTZMANN_EV: f64 = 8.617_333_262e-5;

use crate::BOLTZMANN_EV;
use clre_model::DvfsMode;
use serde::{Deserialize, Serialize};

/// The derived characterization of one `(implementation, DVFS mode)` pair:
/// everything the task-level reliability analysis needs about the raw
/// (unprotected) execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Fault-free execution time in seconds (`cycles / f`).
    pub exec_time: f64,
    /// Average power in watts (dynamic + leakage).
    pub power: f64,
    /// Steady-state temperature in kelvin while executing.
    pub temp_k: f64,
    /// Single-event-upset rate `λ` in errors per second at this voltage.
    pub seu_rate: f64,
    /// Weibull scale parameter `η` in seconds at this thermal stress.
    pub eta: f64,
}

/// Closed-form characterization model (gem5/McPAT substitute).
///
/// The default constants are tuned so that a ~3·10⁵-cycle task lands in the
/// regime of the paper's Fig. 6(a): a few hundred microseconds of execution
/// time and single-digit-percent raw error probability at the nominal
/// operating point, rising steeply at low voltage.
///
/// # Examples
///
/// ```
/// use clre_profile::ProfileModel;
///
/// let m = ProfileModel::default();
/// // Lower voltage ⇒ exponentially higher SEU rate.
/// assert!(m.seu_rate(1.06) > 2.0 * m.seu_rate(1.2));
/// // Hotter silicon ages faster (smaller Weibull scale η).
/// assert!(m.eta_at(360.0) < m.eta_at(320.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileModel {
    /// Ambient temperature in kelvin.
    pub ambient_k: f64,
    /// Junction-to-ambient thermal resistance in K/W.
    pub r_th: f64,
    /// SEU rate at the nominal voltage, in errors/s.
    pub lambda0: f64,
    /// Exponential voltage sensitivity of the SEU rate, in decades/V.
    pub volt_sensitivity: f64,
    /// Nominal supply voltage in volts.
    pub v_nominal: f64,
    /// Pre-exponential constant of the Arrhenius aging law, in seconds.
    pub aging_a: f64,
    /// Activation energy of the dominant aging mechanism, in eV.
    pub aging_ea_ev: f64,
    /// Leakage power per volt of supply, in W/V.
    pub leak_per_volt: f64,
}

impl Default for ProfileModel {
    fn default() -> Self {
        ProfileModel {
            ambient_k: 318.0,      // 45 °C enclosure
            r_th: 40.0,            // small embedded package
            lambda0: 100.0,        // ~3 % raw error over 300 µs at nominal V
            volt_sensitivity: 3.0, // ×10 SEU rate per 0.33 V of undervolting
            v_nominal: 1.2,
            aging_a: 40.0, // η ≈ 10 years at ~350 K with Ea = 0.48 eV
            aging_ea_ev: 0.48,
            leak_per_volt: 0.10,
        }
    }
}

impl ProfileModel {
    /// Dynamic plus leakage power at capacitance `c` (farads), voltage `v`
    /// (volts) and frequency `f` (hertz): `C·V²·f + k_leak·V`.
    pub fn power(&self, c: f64, v: f64, f: f64) -> f64 {
        c * v * v * f + self.leak_per_volt * v
    }

    /// SEU rate `λ(V) = λ₀ · 10^{k·(V_nom − V)}` in errors/s.
    ///
    /// Undervolting reduces the critical charge of storage nodes, which
    /// raises the soft-error rate exponentially.
    pub fn seu_rate(&self, v: f64) -> f64 {
        self.lambda0 * 10f64.powf(self.volt_sensitivity * (self.v_nominal - v))
    }

    /// Steady-state junction temperature `T = T_amb + R_th · P` in kelvin.
    pub fn steady_temp(&self, power: f64) -> f64 {
        self.ambient_k + self.r_th * power
    }

    /// Weibull scale parameter `η(T) = A · exp(E_a / (k_B·T))` in seconds.
    ///
    /// Follows Black's-equation-style Arrhenius acceleration: hotter
    /// silicon has a smaller `η` (it wears out sooner).
    pub fn eta_at(&self, temp_k: f64) -> f64 {
        self.aging_a * (self.aging_ea_ev / (BOLTZMANN_EV * temp_k)).exp()
    }

    /// Full characterization of a `(cycles, capacitance)` implementation at
    /// a DVFS mode.
    ///
    /// # Examples
    ///
    /// ```
    /// use clre_model::DvfsMode;
    /// use clre_profile::ProfileModel;
    ///
    /// let m = ProfileModel::default();
    /// let op = m.operating_point(9.0e5, 1.0e-9, &DvfsMode::new("n", 1.2, 900.0e6));
    /// assert!((op.exec_time - 1.0e-3).abs() < 1e-12); // 9e5 cycles at 900 MHz
    /// ```
    pub fn operating_point(
        &self,
        cycles: f64,
        capacitance: f64,
        mode: &DvfsMode,
    ) -> OperatingPoint {
        let v = mode.voltage();
        let f = mode.frequency_hz();
        let exec_time = cycles / f;
        let power = self.power(capacitance, v, f);
        let temp_k = self.steady_temp(power);
        OperatingPoint {
            exec_time,
            power,
            temp_k,
            seu_rate: self.seu_rate(v),
            eta: self.eta_at(temp_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ProfileModel {
        ProfileModel::default()
    }

    #[test]
    fn power_components() {
        let m = model();
        // 1 nF at 1 V, 1 Hz: dynamic = 1e-9 W, leakage = 0.1 W.
        let p = m.power(1.0e-9, 1.0, 1.0);
        assert!((p - (1.0e-9 + 0.1)).abs() < 1e-15);
        // Dynamic power scales quadratically with voltage.
        let hi = m.power(1.0e-9, 1.2, 900.0e6) - m.leak_per_volt * 1.2;
        let lo = m.power(1.0e-9, 0.6, 900.0e6) - m.leak_per_volt * 0.6;
        assert!((hi / lo - 4.0).abs() < 1e-9);
    }

    #[test]
    fn seu_rate_nominal_and_decades() {
        let m = model();
        assert!((m.seu_rate(m.v_nominal) - m.lambda0).abs() < 1e-9);
        // One third of a volt of undervolting ≈ one decade (k = 3/V).
        let ratio = m.seu_rate(m.v_nominal - 1.0 / 3.0) / m.lambda0;
        assert!((ratio - 10.0).abs() < 1e-6);
    }

    #[test]
    fn temperature_rises_with_power() {
        let m = model();
        assert_eq!(m.steady_temp(0.0), m.ambient_k);
        assert!(m.steady_temp(2.0) > m.steady_temp(1.0));
    }

    #[test]
    fn eta_order_of_magnitude_is_years() {
        let m = model();
        let eta = m.eta_at(350.0);
        // Between one and one hundred years.
        assert!(eta > 3.0e7 && eta < 3.0e9, "eta = {eta}");
    }

    #[test]
    fn operating_point_consistency() {
        let m = model();
        let mode = DvfsMode::new("n", 1.2, 900.0e6);
        let op = m.operating_point(3.0e5, 1.0e-9, &mode);
        assert!((op.exec_time - 3.0e5 / 900.0e6).abs() < 1e-18);
        assert_eq!(op.power, m.power(1.0e-9, 1.2, 900.0e6));
        assert_eq!(op.temp_k, m.steady_temp(op.power));
        assert_eq!(op.eta, m.eta_at(op.temp_k));
        assert_eq!(op.seu_rate, m.seu_rate(1.2));
    }

    #[test]
    fn dvfs_tradeoff_shape_matches_fig6a() {
        // Scaling down V/f must trade time for error probability the way
        // Fig. 6(a) shows: slower AND less reliable per unit time is not
        // the point — slower and *more error-prone over the whole run*.
        let m = model();
        let hi = m.operating_point(3.0e5, 1.0e-9, &DvfsMode::new("hi", 1.2, 900.0e6));
        let lo = m.operating_point(3.0e5, 1.0e-9, &DvfsMode::new("lo", 1.06, 300.0e6));
        assert!(lo.exec_time > 2.5 * hi.exec_time);
        let raw_err_hi = 1.0 - (-hi.seu_rate * hi.exec_time).exp();
        let raw_err_lo = 1.0 - (-lo.seu_rate * lo.exec_time).exp();
        assert!(raw_err_lo > 3.0 * raw_err_hi);
        // Low V runs cooler, so it ages slower (bigger η).
        assert!(lo.eta > hi.eta);
    }
}

//! `clre-chaos` — the deterministic chaos-injection harness.
//!
//! Robustness claims are only as good as the faults they were tested
//! against. This crate compiles a salted, seeded [`FaultPlan`] into
//! injection hooks at every runtime seam of the DSE stack, so a whole
//! campaign can be driven through a reproducible fault storm and its
//! recovered front compared bit-for-bit against the fault-free baseline:
//!
//! * **Evaluation faults** — [`FaultPlan`] implements
//!   [`FaultInjector`], the seam `ResilientProblem` consults before
//!   every attempt (panic / typed error / NaN-poisoned objectives /
//!   artificial stall). [`InjectingProblem`] is the end-to-end variant:
//!   it makes the faults *real* (an actual unwind, an actual `Err`, an
//!   actual sleep) underneath any
//!   [`FallibleProblem`](clre::resilience::FallibleProblem), exercising
//!   the catch-unwind isolation rather than the internal dispatch.
//! * **Solver faults** — re-exported [`SolverFaultPlan`] drives
//!   `clre-markov`'s LU recovery ladder (primary solve → scaled-pivoting
//!   retry → closed-form fallback) per analysis digest.
//! * **Worker death** — re-exported [`DeathPlan`] kills `ExecPool`
//!   workers mid-batch by item index; the pool's recovery pass finishes
//!   the batch bit-identically.
//! * **Sidecar corruption** — [`corrupt_file`] applies one deterministic
//!   bit-flip or truncation to a checkpoint / cache / quarantine file
//!   between save and load, exercising integrity digests, rotation
//!   fallback and skip-and-count parsing.
//!
//! Every decision is **content-addressed**: a pure function of the plan
//! seed and the genome key / analysis digest / item index / file bytes,
//! never of call order, thread identity or wall clock. The same seed
//! therefore reproduces the same fault schedule across worker counts and
//! reruns — which is what lets `chaosbench` assert that recovery is
//! bit-exact.
//!
//! # Examples
//!
//! ```
//! use clre_chaos::FaultPlan;
//! use clre::resilience::FaultInjector;
//!
//! let plan = FaultPlan::new(42).with_panic_ppm(500_000);
//! // Decisions are pure in (seed, key): reruns see the same storm.
//! for key in ["g0", "g1", "g2"] {
//!     assert_eq!(plan.eval_fault(key, 0), plan.eval_fault(key, 0));
//!     // Faults fire on the first attempt only, so a retry recovers.
//!     assert_eq!(plan.eval_fault(key, 1), None);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

use clre::resilience::{FallibleProblem, FaultInjector, InjectedFault};
use clre::DseError;
use clre_moea::{Evaluation, Problem};
use rand::RngCore;

pub use clre::resilience::BackoffPolicy;
pub use clre_exec::DeathPlan;
pub use clre_markov::clr::SolverFaultPlan;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over an iterator of bytes — the one hash the whole chaos
/// harness derives its decisions from.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A salted, seeded evaluation-fault plan: per-kind parts-per-million
/// rates drawn independently per genome key.
///
/// The plan is the canonical [`FaultInjector`]: `ResilientProblem`
/// consults it before every evaluation attempt. Faults fire on attempt 0
/// only, so a supervisor with at least one retry always recovers and the
/// recovered front is bit-identical to the fault-free run — the property
/// `chaosbench` asserts. Each fault kind draws from its own salted
/// stream, so raising one rate never perturbs which keys another kind
/// selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Salt for every per-key decision.
    pub seed: u64,
    /// Probability (ppm) an evaluation panics on its first attempt.
    pub panic_ppm: u32,
    /// Probability (ppm) an evaluation fails with a typed error.
    pub error_ppm: u32,
    /// Probability (ppm) an evaluation returns NaN-poisoned objectives.
    pub poison_ppm: u32,
    /// Probability (ppm) an evaluation stalls before answering.
    pub stall_ppm: u32,
    /// How long a stall fault sleeps, in milliseconds.
    pub stall_ms: u64,
}

impl FaultPlan {
    /// A quiet plan (all rates zero) with the given seed; turn kinds on
    /// with the `with_*_ppm` builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_ppm: 0,
            error_ppm: 0,
            poison_ppm: 0,
            stall_ppm: 0,
            stall_ms: 20,
        }
    }

    /// Sets the panic rate (builder style).
    #[must_use]
    pub fn with_panic_ppm(mut self, ppm: u32) -> Self {
        self.panic_ppm = ppm;
        self
    }

    /// Sets the typed-error rate (builder style).
    #[must_use]
    pub fn with_error_ppm(mut self, ppm: u32) -> Self {
        self.error_ppm = ppm;
        self
    }

    /// Sets the NaN-poisoning rate (builder style).
    #[must_use]
    pub fn with_poison_ppm(mut self, ppm: u32) -> Self {
        self.poison_ppm = ppm;
        self
    }

    /// Sets the stall rate and duration (builder style).
    #[must_use]
    pub fn with_stall_ppm(mut self, ppm: u32, stall_ms: u64) -> Self {
        self.stall_ppm = ppm;
        self.stall_ms = stall_ms;
        self
    }

    /// The per-kind decision draw: FNV-1a over `seed ‖ kind ‖ key`.
    fn fires(&self, kind: u64, key: &str, ppm: u32) -> bool {
        let h = fnv1a(
            self.seed
                .to_le_bytes()
                .into_iter()
                .chain(kind.to_le_bytes())
                .chain(key.bytes()),
        );
        h % 1_000_000 < u64::from(ppm)
    }

    /// The fault (if any) this plan injects for the evaluation of `key`,
    /// independent of attempt. Kinds are checked in a fixed order
    /// (panic, error, poison, stall); the first firing kind wins.
    pub fn decide(&self, key: &str) -> Option<InjectedFault> {
        if self.fires(0, key, self.panic_ppm) {
            return Some(InjectedFault::Panic(format!(
                "chaos: injected panic [{key}]"
            )));
        }
        if self.fires(1, key, self.error_ppm) {
            return Some(InjectedFault::Error(format!(
                "chaos: injected error [{key}]"
            )));
        }
        if self.fires(2, key, self.poison_ppm) {
            return Some(InjectedFault::PoisonObjectives);
        }
        if self.fires(3, key, self.stall_ppm) {
            return Some(InjectedFault::Stall(Duration::from_millis(self.stall_ms)));
        }
        None
    }
}

impl FaultInjector for FaultPlan {
    /// Attempt-0-only injection: retries of a faulted evaluation run
    /// clean, so supervised runs always recover to the fault-free result.
    fn eval_fault(&self, key: &str, attempt: usize) -> Option<InjectedFault> {
        if attempt > 0 {
            return None;
        }
        self.decide(key)
    }
}

/// A [`FallibleProblem`] wrapper that makes a [`FaultPlan`]'s faults
/// *real*: the first evaluation of a selected genome actually panics,
/// actually returns a typed error, actually hands back NaN objectives or
/// actually sleeps — instead of being simulated inside
/// `ResilientProblem`'s dispatch. Wrapping an `InjectingProblem` in a
/// `ResilientProblem` therefore exercises the full recovery machinery
/// end-to-end, catch-unwind isolation included.
///
/// Fault decisions are content-addressed on the genome key, and each key
/// faults on its **first sighting only** (tracked internally), mirroring
/// the plan's attempt-0-only behaviour: the supervisor's retry of the
/// same genome runs clean and recovers the true evaluation.
#[derive(Debug)]
pub struct InjectingProblem<P> {
    inner: P,
    plan: FaultPlan,
    seen: Mutex<HashSet<u64>>,
}

impl<P> InjectingProblem<P> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: P, plan: FaultPlan) -> Self {
        InjectingProblem {
            inner,
            plan,
            seen: Mutex::new(HashSet::new()),
        }
    }

    /// The wrapped problem.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Whether this is the first evaluation of `key` (and marks it seen).
    fn first_sighting(&self, key: &str) -> bool {
        self.seen
            .lock()
            .expect("sighting set poisoned")
            .insert(fnv1a(key.bytes()))
    }
}

impl<P: FallibleProblem> Problem for InjectingProblem<P> {
    type Genome = P::Genome;

    fn objective_count(&self) -> usize {
        self.inner.objective_count()
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Self::Genome {
        self.inner.random_genome(rng)
    }

    fn evaluate(&self, genome: &Self::Genome) -> Evaluation {
        match FallibleProblem::try_evaluate(self, genome) {
            Ok(eval) => eval,
            Err(e) => panic!("{e}"),
        }
    }

    /// `false` on purpose: injected panics are real unwinds here, so a
    /// supervising `ResilientProblem` must keep its catch-unwind backstop
    /// in the loop.
    fn reports_errors(&self) -> bool {
        false
    }
}

impl<P: FallibleProblem> FallibleProblem for InjectingProblem<P> {
    fn try_evaluate(&self, genome: &Self::Genome) -> Result<Evaluation, DseError> {
        let key = self.inner.describe_genome(genome);
        if self.first_sighting(&key) {
            match self.plan.decide(&key) {
                Some(InjectedFault::Panic(msg)) => panic!("{msg}"),
                Some(InjectedFault::Error(what)) => return Err(DseError::Injected { what }),
                Some(InjectedFault::PoisonObjectives) => {
                    return Ok(Evaluation::feasible(vec![
                        f64::NAN;
                        self.inner.objective_count()
                    ]));
                }
                Some(InjectedFault::Stall(pause)) => std::thread::sleep(pause),
                None => {}
            }
        }
        FallibleProblem::try_evaluate(&self.inner, genome)
    }

    fn describe_genome(&self, genome: &Self::Genome) -> String {
        self.inner.describe_genome(genome)
    }
}

/// What [`corrupt_file`] did to a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// One bit of the byte at `offset` was flipped.
    BitFlip {
        /// Byte offset of the flipped bit.
        offset: usize,
        /// Bit index within the byte (0–7).
        bit: u8,
    },
    /// The file was truncated to `len` bytes.
    Truncate {
        /// Length after truncation.
        len: usize,
    },
}

/// Applies one deterministic corruption — a single bit-flip or a
/// truncation — to the file at `path`.
///
/// The choice of corruption, its position and (for flips) the bit are a
/// pure function of `(seed, salt, file length)`, so a chaos scenario
/// damages its sidecars identically on every rerun. An empty file is
/// left unchanged (reported as a zero-length truncation).
///
/// # Errors
///
/// Propagates I/O failures reading or rewriting the file.
pub fn corrupt_file(path: &Path, seed: u64, salt: u64) -> io::Result<Corruption> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Ok(Corruption::Truncate { len: 0 });
    }
    let h = fnv1a(
        seed.to_le_bytes()
            .into_iter()
            .chain(salt.to_le_bytes())
            .chain((bytes.len() as u64).to_le_bytes()),
    );
    let position = usize::try_from((h >> 1) % bytes.len() as u64).expect("position fits usize");
    let corruption = if h & 1 == 0 {
        let bit = u8::try_from((h >> 33) % 8).expect("bit index fits u8");
        bytes[position] ^= 1 << bit;
        Corruption::BitFlip {
            offset: position,
            bit,
        }
    } else {
        bytes.truncate(position);
        Corruption::Truncate { len: position }
    };
    fs::write(path, &bytes)?;
    Ok(corruption)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clre::resilience::ResilientProblem;

    /// A pure toy problem whose genome renders to its own key.
    #[derive(Debug)]
    struct Toy;

    impl Problem for Toy {
        type Genome = u32;

        fn objective_count(&self) -> usize {
            2
        }

        fn random_genome(&self, rng: &mut dyn RngCore) -> u32 {
            rng.next_u32() % 1000
        }

        fn evaluate(&self, genome: &u32) -> Evaluation {
            Evaluation::feasible(vec![f64::from(*genome), 1.0 / f64::from(*genome + 1)])
        }

        fn reports_errors(&self) -> bool {
            true
        }
    }

    impl FallibleProblem for Toy {
        fn try_evaluate(&self, genome: &u32) -> Result<Evaluation, DseError> {
            Ok(self.evaluate(genome))
        }

        fn describe_genome(&self, genome: &u32) -> String {
            genome.to_string()
        }
    }

    fn storm() -> FaultPlan {
        FaultPlan::new(0xC0FFEE)
            .with_panic_ppm(120_000)
            .with_error_ppm(120_000)
            .with_poison_ppm(120_000)
            .with_stall_ppm(120_000, 1)
    }

    #[test]
    fn decisions_are_pure_and_salted() {
        let plan = storm();
        let twin = storm();
        let other = FaultPlan::new(0xBEEF)
            .with_panic_ppm(120_000)
            .with_error_ppm(120_000)
            .with_poison_ppm(120_000)
            .with_stall_ppm(120_000, 1);
        let mut fired = 0usize;
        let mut differs = false;
        for g in 0u32..2000 {
            let key = g.to_string();
            assert_eq!(plan.decide(&key), twin.decide(&key));
            if plan.decide(&key).is_some() {
                fired += 1;
            }
            differs |= plan.decide(&key) != other.decide(&key);
        }
        // ~4 × 12% of keys should fault; accept a generous band.
        assert!((400..=1200).contains(&fired), "fired {fired}");
        assert!(differs, "a different seed must reshuffle the storm");
        // Attempt-0-only via the injector seam.
        assert_eq!(plan.eval_fault("17", 1), None);
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = FaultPlan::new(9);
        for g in 0u32..500 {
            assert_eq!(plan.decide(&g.to_string()), None);
        }
    }

    #[test]
    fn real_faults_recover_under_supervision() {
        let plan = storm();
        let chaotic = ResilientProblem::new(InjectingProblem::new(Toy, plan)).with_max_retries(2);
        let genomes: Vec<u32> = (0..300).collect();
        for g in &genomes {
            let eval = chaotic.evaluate(g);
            assert_eq!(eval, Toy.evaluate(g), "genome {g} must recover bit-exactly");
        }
        let health = chaotic.health().lock().unwrap().clone();
        assert!(health.panics_isolated > 0, "storm must include real panics");
        assert!(
            health.errors_isolated > 0,
            "storm must include typed errors"
        );
        assert!(health.retries > 0);
        assert_eq!(
            health.quarantined, 0,
            "first-sighting faults always recover"
        );
        // The faults are real, not simulated through the injector seam.
        assert_eq!(health.injected, 0);
    }

    #[test]
    fn corruption_is_deterministic() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("clre-chaos-corrupt-{}.txt", std::process::id()));
        let body = b"sidecar line one\nsidecar line two\n";
        fs::write(&path, body).unwrap();
        let first = corrupt_file(&path, 11, 3).unwrap();
        let damaged = fs::read(&path).unwrap();
        assert_ne!(damaged, body, "corruption must change the file");

        fs::write(&path, body).unwrap();
        let second = corrupt_file(&path, 11, 3).unwrap();
        assert_eq!(first, second);
        assert_eq!(fs::read(&path).unwrap(), damaged);

        // A different salt damages differently (possibly same kind).
        fs::write(&path, body).unwrap();
        let mut variety = vec![first];
        for salt in 0..8 {
            fs::write(&path, body).unwrap();
            variety.push(corrupt_file(&path, 11, salt).unwrap());
        }
        variety.dedup();
        assert!(variety.len() > 1, "salts must vary the damage: {variety:?}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_are_left_alone() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("clre-chaos-empty-{}.txt", std::process::id()));
        fs::write(&path, b"").unwrap();
        assert_eq!(
            corrupt_file(&path, 1, 1).unwrap(),
            Corruption::Truncate { len: 0 }
        );
        assert!(fs::read(&path).unwrap().is_empty());
        fs::remove_file(&path).ok();
    }
}

//! Absorbing Markov chain analysis and the CL(R)Early cross-layer
//! reliability chain builders (Section IV of the paper).
//!
//! The paper models a task executing under an arbitrary CLR configuration
//! as an absorbing Markov chain (Fig. 3):
//!
//! * a **timing** chain whose expected time to absorption is the task's
//!   average execution time `AvgExT`, extending the checkpointing model of
//!   Sahoo et al. (VLSID'18) with cross-layer masking states, and
//! * a **functional** chain with two absorbing states — `Error` and
//!   `NoError` — whose absorption probabilities give the task's error
//!   probability `ErrProb`.
//!
//! The generic machinery lives in [`MarkovChain`] (fundamental matrix
//! `N = (I − Q)⁻¹`, expected absorption times `N·r`, absorption
//! probabilities `N·R` — Kemeny & Snell); the CLR-specific construction
//! lives in [`clr`]. A loop-free closed form for configurations without
//! recovery loops is provided in [`closed_form`] for cross-validation.
//!
//! # Examples
//!
//! Analyze a task protected by two-interval checkpointing plus partial TMR
//! and checksums:
//!
//! ```
//! use clre_markov::clr::{ClrChainParams, analyze};
//!
//! # fn main() -> Result<(), clre_markov::MarkovError> {
//! let params = ClrChainParams {
//!     exec_time: 300.0e-6,
//!     seu_rate: 200.0,
//!     m_hw: 0.7,
//!     m_impl_ssw: 0.05,
//!     cov_det: 0.95,
//!     m_tol: 0.98,
//!     m_asw: 0.55,
//!     intervals: 2,
//!     t_det: 9.0e-6,
//!     t_tol: 9.0e-6,
//!     t_chk: 12.0e-6,
//!     p_chk_err: 1.0e-4,
//! };
//! let r = analyze(&params)?;
//! assert!(r.avg_exec_time > r.min_exec_time);
//! assert!(r.error_prob > 0.0 && r.error_prob < 0.06);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
pub mod closed_form;
pub mod clr;
mod error;

pub use chain::{MarkovChain, MarkovChainBuilder, StateId};
pub use clr::{ClrChainParams, ClrChainSpec, FaultMechanism, RobustAnalysis, TaskReliability};
pub use error::MarkovError;

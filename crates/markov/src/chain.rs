use crate::MarkovError;
use clre_num::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of a state within a [`MarkovChain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(pub usize);

impl StateId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A validated absorbing Markov chain with per-state residence times.
///
/// States declared with [`MarkovChainBuilder::absorbing`] are absorbing;
/// all others are transient and must have outgoing probabilities summing
/// to 1. Analysis follows Kemeny & Snell: with transition matrix in
/// canonical form `[[Q, R], [0, I]]`, the fundamental matrix is
/// `N = (I − Q)⁻¹`, expected accumulated residence before absorption is
/// `N·r`, and absorption probabilities are `B = N·R`.
///
/// # Examples
///
/// A biased coin flipped until the first head, counting one second per
/// flip:
///
/// ```
/// use clre_markov::MarkovChain;
///
/// # fn main() -> Result<(), clre_markov::MarkovError> {
/// let mut b = MarkovChain::builder();
/// let flip = b.state("flip", 1.0);
/// let head = b.absorbing("head");
/// b.transition(flip, head, 0.25);
/// b.transition(flip, flip, 0.75);
/// let chain = b.build()?;
/// // Geometric: expected 4 flips.
/// assert!((chain.expected_time_to_absorption(flip)? - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain {
    names: Vec<String>,
    residence: Vec<f64>,
    /// Sparse transitions: `trans[from]` maps `to → p`.
    trans: Vec<BTreeMap<usize, f64>>,
    absorbing: Vec<bool>,
    /// Transient state indices in declaration order.
    transient: Vec<usize>,
    /// Absorbing state indices in declaration order.
    absorbing_ids: Vec<usize>,
}

impl MarkovChain {
    /// Starts building a chain.
    pub fn builder() -> MarkovChainBuilder {
        MarkovChainBuilder::default()
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.names.len()
    }

    /// Number of transient states.
    pub fn transient_count(&self) -> usize {
        self.transient.len()
    }

    /// The state's name.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.names[s.index()]
    }

    /// Whether `s` is absorbing.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn is_absorbing(&self, s: StateId) -> bool {
        self.absorbing[s.index()]
    }

    /// The absorbing states in declaration order.
    pub fn absorbing_states(&self) -> Vec<StateId> {
        self.absorbing_ids.iter().copied().map(StateId).collect()
    }

    /// The transition probability `from → to` (0 if absent).
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn probability(&self, from: StateId, to: StateId) -> f64 {
        self.trans[from.index()]
            .get(&to.index())
            .copied()
            .unwrap_or(0.0)
    }

    /// The dense `Q` block (transient → transient) of the canonical form.
    fn q_matrix(&self) -> Matrix {
        let t = self.transient.len();
        let pos: BTreeMap<usize, usize> = self
            .transient
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        let mut q = Matrix::zeros(t, t);
        for (i, &s) in self.transient.iter().enumerate() {
            for (&to, &p) in &self.trans[s] {
                if let Some(&j) = pos.get(&to) {
                    q.set(i, j, p);
                }
            }
        }
        q
    }

    /// The fundamental matrix `N = (I − Q)⁻¹`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotAbsorbing`] if some transient state can
    /// never reach absorption (singular `I − Q`).
    pub fn fundamental_matrix(&self) -> Result<Matrix, MarkovError> {
        self.fundamental_matrix_via(false)
    }

    /// [`MarkovChain::fundamental_matrix`] computed with *scaled* partial
    /// pivoting — the more robust (and slightly costlier) factorization
    /// used as the retry path when the plain solver fails or returns
    /// non-finite values on badly row-scaled `I − Q` blocks.
    ///
    /// # Errors
    ///
    /// As for [`MarkovChain::fundamental_matrix`].
    pub fn fundamental_matrix_scaled(&self) -> Result<Matrix, MarkovError> {
        self.fundamental_matrix_via(true)
    }

    fn fundamental_matrix_via(&self, scaled: bool) -> Result<Matrix, MarkovError> {
        let q = self.q_matrix();
        let n = Matrix::identity(q.rows()).sub(&q)?;
        Ok(if scaled {
            n.inverse_scaled()?
        } else {
            n.inverse()?
        })
    }

    /// Expected total residence time accumulated before absorption when
    /// starting in `start`: `(N·r)[start]`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::StateOutOfRange`] for an invalid `start`.
    /// * [`MarkovError::StartIsAbsorbing`] if `start` is absorbing.
    /// * [`MarkovError::NotAbsorbing`] if absorption is not certain.
    pub fn expected_time_to_absorption(&self, start: StateId) -> Result<f64, MarkovError> {
        self.expected_time_via(start, false)
    }

    /// [`MarkovChain::expected_time_to_absorption`] solved with scaled
    /// partial pivoting (see
    /// [`MarkovChain::fundamental_matrix_scaled`]).
    ///
    /// # Errors
    ///
    /// As for [`MarkovChain::expected_time_to_absorption`].
    pub fn expected_time_to_absorption_scaled(&self, start: StateId) -> Result<f64, MarkovError> {
        self.expected_time_via(start, true)
    }

    fn expected_time_via(&self, start: StateId, scaled: bool) -> Result<f64, MarkovError> {
        let row = self.transient_row(start)?;
        // Solve (I − Q)ᵀ is unnecessary: solve (I − Q)·t = r directly and
        // pick the entry for `start` — one LU solve instead of an inverse.
        let q = self.q_matrix();
        let a = Matrix::identity(q.rows()).sub(&q)?;
        let r: Vec<f64> = self.transient.iter().map(|&s| self.residence[s]).collect();
        let t = if scaled {
            a.solve_scaled(&r)?
        } else {
            a.solve(&r)?
        };
        Ok(t[row])
    }

    /// Variance of the total residence time accumulated before absorption
    /// when starting in `start`.
    ///
    /// With `t = N·r` the vector of expected remaining times,
    /// conditioning on the first transition gives the second moment
    /// `m₂ = N·(r∘r + 2·r∘(Q·t))` (`∘` is the element-wise product), so
    /// `Var = m₂[start] − t[start]²`. Computed with two LU solves, no
    /// explicit inverse.
    ///
    /// # Errors
    ///
    /// As for [`MarkovChain::expected_time_to_absorption`].
    ///
    /// # Examples
    ///
    /// ```
    /// use clre_markov::MarkovChain;
    ///
    /// # fn main() -> Result<(), clre_markov::MarkovError> {
    /// // Geometric number of unit-time flips with p = 1/4:
    /// // mean 4, variance (1−p)/p² = 12.
    /// let mut b = MarkovChain::builder();
    /// let flip = b.state("flip", 1.0);
    /// let head = b.absorbing("head");
    /// b.transition(flip, head, 0.25);
    /// b.transition(flip, flip, 0.75);
    /// let c = b.build()?;
    /// assert!((c.time_to_absorption_variance(flip)? - 12.0).abs() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    pub fn time_to_absorption_variance(&self, start: StateId) -> Result<f64, MarkovError> {
        let row = self.transient_row(start)?;
        let q = self.q_matrix();
        let a = Matrix::identity(q.rows()).sub(&q)?;
        let r: Vec<f64> = self.transient.iter().map(|&s| self.residence[s]).collect();
        // t = N·r via one solve.
        let t = a.solve(&r)?;
        // m2 = N·(r∘r + 2·r∘(Q·t)) via a second solve.
        let qt = q.mul_vec(&t)?;
        let rhs: Vec<f64> = r
            .iter()
            .zip(&qt)
            .map(|(&ri, &qti)| ri * ri + 2.0 * ri * qti)
            .collect();
        let m2 = a.solve(&rhs)?;
        Ok((m2[row] - t[row] * t[row]).max(0.0))
    }

    /// Expected number of visits to each transient state before absorption
    /// when starting in `start` (the `start` row of `N`).
    ///
    /// # Errors
    ///
    /// As for [`MarkovChain::expected_time_to_absorption`].
    pub fn expected_visits(&self, start: StateId) -> Result<Vec<(StateId, f64)>, MarkovError> {
        let row = self.transient_row(start)?;
        let n = self.fundamental_matrix()?;
        Ok(self
            .transient
            .iter()
            .enumerate()
            .map(|(j, &s)| (StateId(s), n.get(row, j)))
            .collect())
    }

    /// Probability of being absorbed in each absorbing state when starting
    /// in `start` (the `start` row of `B = N·R`).
    ///
    /// # Errors
    ///
    /// As for [`MarkovChain::expected_time_to_absorption`].
    ///
    /// # Examples
    ///
    /// ```
    /// use clre_markov::MarkovChain;
    ///
    /// # fn main() -> Result<(), clre_markov::MarkovError> {
    /// let mut b = MarkovChain::builder();
    /// let s = b.state("s", 0.0);
    /// let win = b.absorbing("win");
    /// let lose = b.absorbing("lose");
    /// b.transition(s, win, 0.3);
    /// b.transition(s, lose, 0.7);
    /// let c = b.build()?;
    /// let probs = c.absorption_probabilities(s)?;
    /// assert!((probs[&win] - 0.3).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn absorption_probabilities(
        &self,
        start: StateId,
    ) -> Result<BTreeMap<StateId, f64>, MarkovError> {
        self.absorption_probabilities_via(start, false)
    }

    /// [`MarkovChain::absorption_probabilities`] computed through the
    /// scaled-pivoting fundamental matrix (see
    /// [`MarkovChain::fundamental_matrix_scaled`]).
    ///
    /// # Errors
    ///
    /// As for [`MarkovChain::absorption_probabilities`].
    pub fn absorption_probabilities_scaled(
        &self,
        start: StateId,
    ) -> Result<BTreeMap<StateId, f64>, MarkovError> {
        self.absorption_probabilities_via(start, true)
    }

    fn absorption_probabilities_via(
        &self,
        start: StateId,
        scaled: bool,
    ) -> Result<BTreeMap<StateId, f64>, MarkovError> {
        let row = self.transient_row(start)?;
        let n = self.fundamental_matrix_via(scaled)?;
        let mut out = BTreeMap::new();
        for &abs in &self.absorbing_ids {
            // B[row, abs] = Σ_j N[row, j] · R[j, abs]
            let mut acc = 0.0;
            for (j, &s) in self.transient.iter().enumerate() {
                if let Some(&p) = self.trans[s].get(&abs) {
                    acc += n.get(row, j) * p;
                }
            }
            out.insert(StateId(abs), acc);
        }
        Ok(out)
    }

    /// Renders the chain in Graphviz DOT format: absorbing states are
    /// double circles, transitions are labelled with their probabilities,
    /// states with non-zero residence show it in the label.
    ///
    /// # Examples
    ///
    /// ```
    /// # use clre_markov::MarkovChain;
    /// # fn main() -> Result<(), clre_markov::MarkovError> {
    /// let mut b = MarkovChain::builder();
    /// let s = b.state("Exec", 1.0e-4);
    /// let e = b.absorbing("End");
    /// b.transition(s, e, 1.0);
    /// let dot = b.build()?.to_dot();
    /// assert!(dot.contains("doublecircle"));
    /// assert!(dot.contains("Exec"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph markov {\n  rankdir=LR;\n");
        for (i, name) in self.names.iter().enumerate() {
            let shape = if self.absorbing[i] {
                "doublecircle"
            } else {
                "circle"
            };
            let label = if self.residence[i] > 0.0 {
                format!("{name}\\nr={:.2e}", self.residence[i])
            } else {
                name.clone()
            };
            out.push_str(&format!("  S{i} [shape={shape}, label=\"{label}\"];\n"));
        }
        for (from, row) in self.trans.iter().enumerate() {
            for (&to, &p) in row {
                out.push_str(&format!("  S{from} -> S{to} [label=\"{p:.3}\"];\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    fn transient_row(&self, start: StateId) -> Result<usize, MarkovError> {
        if start.index() >= self.names.len() {
            return Err(MarkovError::StateOutOfRange {
                state: start.index(),
                count: self.names.len(),
            });
        }
        if self.absorbing[start.index()] {
            return Err(MarkovError::StartIsAbsorbing {
                state: start.index(),
            });
        }
        Ok(self
            .transient
            .iter()
            .position(|&s| s == start.index())
            .expect("non-absorbing state is transient"))
    }
}

/// Builder for [`MarkovChain`].
#[derive(Debug, Default, Clone)]
pub struct MarkovChainBuilder {
    names: Vec<String>,
    residence: Vec<f64>,
    absorbing: Vec<bool>,
    trans: Vec<BTreeMap<usize, f64>>,
}

/// Tolerance for validating that transient rows sum to 1.
const ROW_SUM_EPS: f64 = 1e-9;

impl MarkovChainBuilder {
    /// Declares a transient state with the given residence time and
    /// returns its id.
    pub fn state(&mut self, name: impl Into<String>, residence: f64) -> StateId {
        self.names.push(name.into());
        self.residence.push(residence);
        self.absorbing.push(false);
        self.trans.push(BTreeMap::new());
        StateId(self.names.len() - 1)
    }

    /// Declares an absorbing state and returns its id.
    pub fn absorbing(&mut self, name: impl Into<String>) -> StateId {
        let id = self.state(name, 0.0);
        self.absorbing[id.index()] = true;
        id
    }

    /// Adds (or accumulates onto) the transition `from → to` with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if either state id was not produced by this builder.
    pub fn transition(&mut self, from: StateId, to: StateId, p: f64) -> &mut Self {
        assert!(
            from.index() < self.names.len() && to.index() < self.names.len(),
            "state id out of range"
        );
        *self.trans[from.index()].entry(to.index()).or_insert(0.0) += p;
        self
    }

    /// Validates and produces the chain.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::InvalidProbability`] for entries outside `[0, 1]`.
    /// * [`MarkovError::InvalidResidence`] for negative/non-finite times.
    /// * [`MarkovError::RowSumNotOne`] if a transient row's sum differs
    ///   from 1 by more than `1e-9`.
    /// * [`MarkovError::NoAbsorbingState`] if every state is transient.
    pub fn build(self) -> Result<MarkovChain, MarkovError> {
        let n = self.names.len();
        for (s, &res) in self.residence.iter().enumerate() {
            if !res.is_finite() || res < 0.0 {
                return Err(MarkovError::InvalidResidence {
                    state: s,
                    value: res,
                });
            }
        }
        for (from, row) in self.trans.iter().enumerate() {
            for (&to, &p) in row {
                if !p.is_finite() || !(0.0..=1.0 + ROW_SUM_EPS).contains(&p) {
                    return Err(MarkovError::InvalidProbability { from, to, value: p });
                }
            }
            if !self.absorbing[from] {
                let sum: f64 = row.values().sum();
                if (sum - 1.0).abs() > ROW_SUM_EPS {
                    return Err(MarkovError::RowSumNotOne { state: from, sum });
                }
            }
        }
        let absorbing_ids: Vec<usize> = (0..n).filter(|&i| self.absorbing[i]).collect();
        if absorbing_ids.is_empty() {
            return Err(MarkovError::NoAbsorbingState);
        }
        let transient: Vec<usize> = (0..n).filter(|&i| !self.absorbing[i]).collect();
        Ok(MarkovChain {
            names: self.names,
            residence: self.residence,
            trans: self.trans,
            absorbing: self.absorbing,
            transient,
            absorbing_ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drunkard's walk on 0..=4 with absorbing ends.
    fn drunkard() -> (MarkovChain, Vec<StateId>) {
        let mut b = MarkovChain::builder();
        let home = b.absorbing("home");
        let s1 = b.state("p1", 1.0);
        let s2 = b.state("p2", 1.0);
        let s3 = b.state("p3", 1.0);
        let bar = b.absorbing("bar");
        for (s, l, r) in [(s1, home, s2), (s2, s1, s3), (s3, s2, bar)] {
            b.transition(s, l, 0.5);
            b.transition(s, r, 0.5);
        }
        (b.build().unwrap(), vec![home, s1, s2, s3, bar])
    }

    #[test]
    fn drunkard_expected_steps() {
        // Classic result: expected steps from position k of n = k(n-k).
        let (c, ids) = drunkard();
        assert!((c.expected_time_to_absorption(ids[1]).unwrap() - 3.0).abs() < 1e-9);
        assert!((c.expected_time_to_absorption(ids[2]).unwrap() - 4.0).abs() < 1e-9);
        assert!((c.expected_time_to_absorption(ids[3]).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn drunkard_absorption_probabilities() {
        let (c, ids) = drunkard();
        let p = c.absorption_probabilities(ids[2]).unwrap();
        assert!((p[&ids[0]] - 0.5).abs() < 1e-12);
        assert!((p[&ids[4]] - 0.5).abs() < 1e-12);
        let p1 = c.absorption_probabilities(ids[1]).unwrap();
        assert!((p1[&ids[0]] - 0.75).abs() < 1e-12);
        // Absorption probabilities always sum to 1.
        assert!((p1.values().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_visits_match_fundamental_matrix() {
        let (c, ids) = drunkard();
        let visits = c.expected_visits(ids[2]).unwrap();
        let total: f64 = visits.iter().map(|(_, v)| v).sum();
        // Unit residence everywhere ⇒ total visits == expected time.
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn variance_of_deterministic_path_is_zero() {
        let mut b = MarkovChain::builder();
        let s0 = b.state("s0", 2.0);
        let s1 = b.state("s1", 3.0);
        let end = b.absorbing("end");
        b.transition(s0, s1, 1.0);
        b.transition(s1, end, 1.0);
        let c = b.build().unwrap();
        assert!((c.expected_time_to_absorption(s0).unwrap() - 5.0).abs() < 1e-12);
        assert!(c.time_to_absorption_variance(s0).unwrap() < 1e-12);
    }

    #[test]
    fn variance_matches_two_outcome_branch() {
        // One step of time 0, then absorb into A (time 1 more via s1) w.p.
        // 0.5 or absorb immediately w.p. 0.5: total time ∈ {0, 1} with
        // equal probability → mean 0.5, variance 0.25.
        let mut b = MarkovChain::builder();
        let s0 = b.state("s0", 0.0);
        let s1 = b.state("s1", 1.0);
        let end = b.absorbing("end");
        b.transition(s0, s1, 0.5);
        b.transition(s0, end, 0.5);
        b.transition(s1, end, 1.0);
        let c = b.build().unwrap();
        assert!((c.expected_time_to_absorption(s0).unwrap() - 0.5).abs() < 1e-12);
        assert!((c.time_to_absorption_variance(s0).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_row_sum() {
        let mut b = MarkovChain::builder();
        let s = b.state("s", 0.0);
        let a = b.absorbing("a");
        b.transition(s, a, 0.5);
        assert!(matches!(b.build(), Err(MarkovError::RowSumNotOne { .. })));
    }

    #[test]
    fn rejects_invalid_probability() {
        let mut b = MarkovChain::builder();
        let s = b.state("s", 0.0);
        let a = b.absorbing("a");
        b.transition(s, a, -0.5);
        b.transition(s, s, 1.5);
        assert!(matches!(
            b.build(),
            Err(MarkovError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn rejects_no_absorbing() {
        let mut b = MarkovChain::builder();
        let s = b.state("s", 0.0);
        b.transition(s, s, 1.0);
        assert_eq!(b.build().unwrap_err(), MarkovError::NoAbsorbingState);
    }

    #[test]
    fn rejects_negative_residence() {
        let mut b = MarkovChain::builder();
        let s = b.state("s", -1.0);
        let a = b.absorbing("a");
        b.transition(s, a, 1.0);
        assert!(matches!(
            b.build(),
            Err(MarkovError::InvalidResidence { .. })
        ));
    }

    #[test]
    fn start_must_be_transient_and_in_range() {
        let (c, ids) = drunkard();
        assert!(matches!(
            c.expected_time_to_absorption(ids[0]),
            Err(MarkovError::StartIsAbsorbing { .. })
        ));
        assert!(matches!(
            c.expected_time_to_absorption(StateId(99)),
            Err(MarkovError::StateOutOfRange { .. })
        ));
    }

    #[test]
    fn unreachable_absorption_detected() {
        let mut b = MarkovChain::builder();
        let s = b.state("spin", 1.0);
        let _a = b.absorbing("a");
        b.transition(s, s, 1.0); // never reaches `a`
        let c = b.build().unwrap();
        assert_eq!(
            c.expected_time_to_absorption(s).unwrap_err(),
            MarkovError::NotAbsorbing
        );
    }

    #[test]
    fn transition_accumulates_parallel_edges() {
        let mut b = MarkovChain::builder();
        let s = b.state("s", 2.0);
        let a = b.absorbing("a");
        b.transition(s, a, 0.5);
        b.transition(s, a, 0.5);
        let c = b.build().unwrap();
        assert_eq!(c.probability(s, a), 1.0);
        assert!((c.expected_time_to_absorption(s).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dot_export_shows_absorbers_and_probabilities() {
        let (c, _) = drunkard();
        let dot = c.to_dot();
        assert_eq!(dot.matches("doublecircle").count(), 2);
        assert!(dot.contains("0.500"));
        assert!(dot.contains("home"));
        // Residence annotations present for timed states.
        assert!(dot.contains("r=1.00e0"));
    }

    #[test]
    fn metadata_accessors() {
        let (c, ids) = drunkard();
        assert_eq!(c.state_count(), 5);
        assert_eq!(c.transient_count(), 3);
        assert_eq!(c.state_name(ids[0]), "home");
        assert!(c.is_absorbing(ids[0]));
        assert!(!c.is_absorbing(ids[1]));
        assert_eq!(c.absorbing_states(), vec![ids[0], ids[4]]);
        assert_eq!(ids[1].to_string(), "S1");
    }
}

//! Exact closed-form solution for single-interval configurations, used to
//! cross-validate the matrix-based Markov solver.
//!
//! For `intervals = 1` the chain of [`crate::clr`] has a single recovery
//! loop (Exec → … → SSWTol → Exec), so absorption reduces to a geometric
//! series. Per execution attempt define:
//!
//! * `q_retry` — probability the attempt ends in a detected-and-tolerated
//!   error (roll back and retry),
//! * `q_err`  — probability the attempt escapes with an error,
//! * `q_clean = 1 − q_retry − q_err`.
//!
//! Then `ErrProb = q_err / (1 − q_retry)` and
//! `AvgExT = (T_exec + T_Det + p_tol·T_Tol) / (1 − q_retry)` where `p_tol`
//! is the per-attempt probability of entering the tolerance state.
//!
//! The unit and property tests in this crate assert agreement between this
//! module and the general solver to ~1e-12, which validates the matrix
//! pipeline (builder → canonical form → LU solve) end to end.

use crate::clr::{ClrChainSpec, FaultMechanism};
use crate::{ClrChainParams, MarkovError, TaskReliability};

/// Exact single-interval solution.
///
/// # Errors
///
/// Returns [`MarkovError::InvalidResidence`] (reusing the chain's
/// validation) if `params.intervals != 1` — multi-interval configurations
/// have no simple closed form and must use [`crate::clr::analyze`].
///
/// # Examples
///
/// ```
/// use clre_markov::{closed_form, clr, ClrChainParams};
///
/// # fn main() -> Result<(), clre_markov::MarkovError> {
/// let p = ClrChainParams {
///     cov_det: 0.9, m_tol: 0.97, t_det: 10e-6, t_tol: 5e-6,
///     ..ClrChainParams::unprotected(300e-6, 200.0)
/// };
/// let exact = closed_form::analyze(&p)?;
/// let markov = clr::analyze(&p)?;
/// assert!((exact.error_prob - markov.error_prob).abs() < 1e-12);
/// assert!((exact.avg_exec_time - markov.avg_exec_time).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn analyze(params: &ClrChainParams) -> Result<TaskReliability, MarkovError> {
    if params.intervals != 1 {
        return Err(MarkovError::InvalidResidence {
            state: 0,
            value: params.intervals as f64,
        });
    }
    let p_ne = (-params.seu_rate * params.exec_time).exp();
    // Probability an error survives hardware and implicit SSW masking.
    let p_escaped = (1.0 - p_ne) * (1.0 - params.m_hw) * (1.0 - params.m_impl_ssw);
    let p_tol = p_escaped * params.cov_det;
    let q_retry = p_tol * params.m_tol;
    let q_err =
        p_tol * (1.0 - params.m_tol) + p_escaped * (1.0 - params.cov_det) * (1.0 - params.m_asw);
    if q_retry >= 1.0 {
        return Err(MarkovError::NotAbsorbing);
    }
    let attempts = 1.0 / (1.0 - q_retry);
    let time_per_attempt = params.exec_time + params.t_det + p_tol * params.t_tol;
    Ok(TaskReliability {
        min_exec_time: params.min_exec_time(),
        avg_exec_time: time_per_attempt * attempts,
        error_prob: clre_num::util::clamp_prob(q_err * attempts),
    })
}

/// Exact single-interval solution for a mechanism-aware [`ClrChainSpec`].
///
/// For [`FaultMechanism::Transient`] this evaluates exactly the same float
/// expressions as [`analyze`], so results are bit-identical. For
/// [`FaultMechanism::PermanentAging`] the competing-risk split is applied:
/// with total rate `λ = λ_t + λ_p`, a fault occurs with `1 − exp(−λT)` and
/// is transient with probability `λ_t/λ`. Transient faults traverse the
/// usual HWRel → SSW → ASW masking ladder; permanent faults are either
/// masked spatially by the hardware layer (`m_HW`, e.g. TMR voting) or
/// absorb into `Error` directly — software checkpointing and ASW coding
/// cannot repair a dead resource.
///
/// # Errors
///
/// As for [`analyze`]; also rejects invalid mechanism rates via
/// [`ClrChainSpec::validate`].
pub fn analyze_spec(spec: &ClrChainSpec) -> Result<TaskReliability, MarkovError> {
    spec.validate()?;
    let params = &spec.params;
    match spec.mechanism {
        FaultMechanism::Transient => analyze(params),
        mechanism if mechanism.perm_rate() == 0.0 => analyze(params),
        mechanism => {
            if params.intervals != 1 {
                return Err(MarkovError::InvalidResidence {
                    state: 0,
                    value: params.intervals as f64,
                });
            }
            let perm_rate = mechanism.perm_rate();
            let lambda = params.seu_rate + perm_rate;
            let p_event = 1.0 - (-lambda * params.exec_time).exp();
            let transient_frac = if lambda > 0.0 {
                params.seu_rate / lambda
            } else {
                1.0
            };
            let p_transient = p_event * transient_frac;
            let p_permanent = p_event * (1.0 - transient_frac);
            // Transient arm: identical masking ladder to `analyze`.
            let p_escaped = p_transient * (1.0 - params.m_hw) * (1.0 - params.m_impl_ssw);
            let p_tol = p_escaped * params.cov_det;
            let q_retry = p_tol * params.m_tol;
            // Permanent arm: only spatial hardware redundancy masks.
            let q_err = p_tol * (1.0 - params.m_tol)
                + p_escaped * (1.0 - params.cov_det) * (1.0 - params.m_asw)
                + p_permanent * (1.0 - params.m_hw);
            if q_retry >= 1.0 {
                return Err(MarkovError::NotAbsorbing);
            }
            let attempts = 1.0 / (1.0 - q_retry);
            let time_per_attempt = params.exec_time + params.t_det + p_tol * params.t_tol;
            Ok(TaskReliability {
                min_exec_time: params.min_exec_time(),
                avg_exec_time: time_per_attempt * attempts,
                error_prob: clre_num::util::clamp_prob(q_err * attempts),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clr;

    fn cases() -> Vec<ClrChainParams> {
        let base = ClrChainParams::unprotected(250.0e-6, 300.0);
        vec![
            base,
            ClrChainParams { m_hw: 0.7, ..base },
            ClrChainParams {
                m_hw: 0.5,
                m_impl_ssw: 0.1,
                m_asw: 0.93,
                ..base
            },
            ClrChainParams {
                cov_det: 0.9,
                m_tol: 0.97,
                t_det: 12.0e-6,
                t_tol: 5.0e-6,
                ..base
            },
            ClrChainParams {
                m_hw: 0.95,
                m_impl_ssw: 0.2,
                cov_det: 0.95,
                m_tol: 0.98,
                m_asw: 0.55,
                t_det: 15.0e-6,
                t_tol: 7.0e-6,
                ..base
            },
        ]
    }

    #[test]
    fn agrees_with_markov_solver() {
        for p in cases() {
            let a = analyze(&p).unwrap();
            let b = clr::analyze(&p).unwrap();
            assert!(
                (a.error_prob - b.error_prob).abs() < 1e-12,
                "error prob mismatch for {p:?}: {} vs {}",
                a.error_prob,
                b.error_prob
            );
            assert!(
                (a.avg_exec_time - b.avg_exec_time).abs() < 1e-12,
                "avg time mismatch for {p:?}: {} vs {}",
                a.avg_exec_time,
                b.avg_exec_time
            );
            assert_eq!(a.min_exec_time, b.min_exec_time);
        }
    }

    #[test]
    fn permanent_oracle_agrees_with_markov_solver() {
        for p in cases() {
            for rate in [0.0, 5.0, 120.0, 900.0] {
                let spec = ClrChainSpec::permanent_aging(p, rate);
                let a = analyze_spec(&spec).unwrap();
                let b = clr::analyze_spec(&spec).unwrap();
                assert!(
                    (a.error_prob - b.error_prob).abs() < 1e-12,
                    "error prob mismatch for {spec:?}: {} vs {}",
                    a.error_prob,
                    b.error_prob
                );
                assert!(
                    (a.avg_exec_time - b.avg_exec_time).abs() < 1e-12,
                    "avg time mismatch for {spec:?}: {} vs {}",
                    a.avg_exec_time,
                    b.avg_exec_time
                );
            }
        }
    }

    #[test]
    fn transient_spec_is_bit_identical_to_legacy() {
        for p in cases() {
            let legacy = analyze(&p).unwrap();
            let spec = analyze_spec(&ClrChainSpec::transient(p)).unwrap();
            assert_eq!(legacy.error_prob.to_bits(), spec.error_prob.to_bits());
            assert_eq!(legacy.avg_exec_time.to_bits(), spec.avg_exec_time.to_bits());
        }
    }

    #[test]
    fn rejects_multi_interval() {
        let p = ClrChainParams {
            intervals: 2,
            ..ClrChainParams::unprotected(1e-4, 100.0)
        };
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn degenerate_infinite_retry_detected() {
        // With perfect detection+tolerance and p_ne underflowing to 0,
        // every attempt retries forever: q_retry = 1 exactly, which both
        // solvers must reject as non-absorbing.
        let p = ClrChainParams {
            cov_det: 1.0,
            m_tol: 1.0,
            ..ClrChainParams::unprotected(1.0, 1e12)
        };
        assert_eq!(analyze(&p).unwrap_err(), MarkovError::NotAbsorbing);
        assert_eq!(clr::analyze(&p).unwrap_err(), MarkovError::NotAbsorbing);
        // At a survivable rate the series converges: perfect tolerance
        // means zero escapes and a finite (if inflated) execution time.
        let ok = ClrChainParams {
            cov_det: 1.0,
            m_tol: 1.0,
            ..ClrChainParams::unprotected(1.0e-4, 100.0)
        };
        let r = analyze(&ok).unwrap();
        assert!(r.avg_exec_time.is_finite());
        assert!(r.avg_exec_time > 1.0e-4);
        assert_eq!(r.error_prob, 0.0);
    }
}

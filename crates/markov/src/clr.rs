//! CL(R)Early chain builders: turn one cross-layer reliability
//! configuration into the timing and functional Markov chains of the
//! paper's Fig. 3 and extract task-level reliability metrics.
//!
//! Per inter-checkpoint interval (ICI) `i` the chains contain:
//!
//! ```text
//! Exec_i ──(p_ne)────────────────────────────▶ cont_i
//!   │ 1−p_ne
//!   ▼
//! HWRel_i ──(m_HW)───────────────────────────▶ cont_i
//!   │ 1−m_HW
//!   ▼
//! SSWImpl_i ──(m_implSSW)────────────────────▶ cont_i
//!   │ 1−m_implSSW
//!   ▼
//! SSWDet_i ──(cov_Det)──▶ SSWTol_i ──(m_Tol)─▶ Exec_i   (roll back)
//!   │ 1−cov_Det                 │ 1−m_Tol
//!   ▼                           ▼
//! ASWRel_i ──(m_ASW)──▶ cont_i  Error / cont_i
//!   │ 1−m_ASW
//!   ▼
//! Error / cont_i
//! ```
//!
//! where `cont_i` is the checkpoint state `Chk_i` for `i < k` and the final
//! absorbing state for `i = k`. In the **timing** chain there is a single
//! absorbing `End` state: error escapes consume time but still terminate.
//! In the **functional** chain escapes absorb into `Error`, clean
//! completion into `NoError`, and checkpoint creation itself may corrupt
//! state with probability `p_chk_err` (the dotted edge of Fig. 3(b)).
//!
//! The fault *mechanism* driving the event rate is pluggable
//! ([`FaultMechanism`]): the default transient-SEU template reproduces the
//! paper's Fig. 3 exactly, while the permanent/aging template (à la Aliee
//! et al.) splits each interval's fault events between the transient
//! recovery ladder above and a `PermRel_i` state modeling a permanent
//! resource failure — maskable only by spatial hardware redundancy, never
//! by roll-back, detection, or software voting. A [`ClrChainSpec`] pairs
//! the flattened parameters with their mechanism; the historic
//! `ClrChainParams`-based entry points are thin transient wrappers.

use crate::{MarkovChain, MarkovError, StateId};
use serde::{Deserialize, Serialize};

/// Flattened parameters describing a task under one CLR configuration.
///
/// Produced by the task-level DSE layer from an implementation's operating
/// point and the per-layer method parameters; consumed by
/// [`timing_chain`], [`functional_chain`] and [`analyze`]. All times are in
/// seconds, all probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClrChainParams {
    /// Total useful execution time `T_exec` (already including any
    /// hardware/application-software time-overhead factors).
    pub exec_time: f64,
    /// Single-event-upset rate `λ` in errors/s; `p_ne = e^{−λ·T_i}` per
    /// interval.
    pub seu_rate: f64,
    /// Hardware-layer masking `m_HW`.
    pub m_hw: f64,
    /// Implicit system-software masking `m_implSSW`.
    pub m_impl_ssw: f64,
    /// System-software detection coverage `cov_Det`.
    pub cov_det: f64,
    /// System-software tolerance masking `m_Tol`.
    pub m_tol: f64,
    /// Application-software masking `m_ASW`.
    pub m_asw: f64,
    /// Number of inter-checkpoint intervals `k ≥ 1` (`k − 1` checkpoints).
    pub intervals: u32,
    /// Detection time `T_Det` added to each interval's execution state.
    pub t_det: f64,
    /// Tolerance (roll-back) time `T_Tol` per detected-and-tolerated error.
    pub t_tol: f64,
    /// Checkpoint-creation time `T_Chk` per checkpoint.
    pub t_chk: f64,
    /// Probability that checkpoint creation corrupts state.
    pub p_chk_err: f64,
}

impl ClrChainParams {
    /// An unprotected task: no masking, detection or checkpointing.
    pub fn unprotected(exec_time: f64, seu_rate: f64) -> Self {
        ClrChainParams {
            exec_time,
            seu_rate,
            m_hw: 0.0,
            m_impl_ssw: 0.0,
            cov_det: 0.0,
            m_tol: 0.0,
            m_asw: 0.0,
            intervals: 1,
            t_det: 0.0,
            t_tol: 0.0,
            t_chk: 0.0,
            p_chk_err: 0.0,
        }
    }

    /// Fault-free (minimum) execution time: useful time plus detection on
    /// every interval plus every checkpoint.
    pub fn min_exec_time(&self) -> f64 {
        let k = self.intervals.max(1) as f64;
        self.exec_time + k * self.t_det + (k - 1.0) * self.t_chk
    }

    /// Content digest of this parameter set: FNV-1a (64-bit) over the
    /// IEEE-754 bit patterns of every field, in declaration order.
    ///
    /// Exact bits, no quantization: two parameter sets share a digest only
    /// if every field is bit-identical (so `0.0` and `-0.0` digest
    /// differently, as do distinct NaN payloads). Used as the key of the
    /// task-analysis cache, where bit-exactness is what guarantees cached
    /// analyses replay the uncached computation verbatim.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let words = [
            self.exec_time.to_bits(),
            self.seu_rate.to_bits(),
            self.m_hw.to_bits(),
            self.m_impl_ssw.to_bits(),
            self.cov_det.to_bits(),
            self.m_tol.to_bits(),
            self.m_asw.to_bits(),
            u64::from(self.intervals),
            self.t_det.to_bits(),
            self.t_tol.to_bits(),
            self.t_chk.to_bits(),
            self.p_chk_err.to_bits(),
        ];
        let mut hash = FNV_OFFSET;
        for word in words {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        hash
    }

    fn validate(&self) -> Result<(), MarkovError> {
        let probs = [
            self.m_hw,
            self.m_impl_ssw,
            self.cov_det,
            self.m_tol,
            self.m_asw,
            self.p_chk_err,
        ];
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(MarkovError::InvalidProbability {
                    from: i,
                    to: i,
                    value: p,
                });
            }
        }
        let times = [self.exec_time, self.t_det, self.t_tol, self.t_chk];
        for (i, &t) in times.iter().enumerate() {
            if !t.is_finite() || t < 0.0 {
                return Err(MarkovError::InvalidResidence { state: i, value: t });
            }
        }
        if self.exec_time <= 0.0 {
            return Err(MarkovError::InvalidResidence {
                state: 0,
                value: self.exec_time,
            });
        }
        if !self.seu_rate.is_finite() || self.seu_rate < 0.0 {
            return Err(MarkovError::InvalidProbability {
                from: 0,
                to: 0,
                value: self.seu_rate,
            });
        }
        Ok(())
    }
}

/// The physical fault mechanism a chain models.
///
/// The mechanism decides how fault events are *routed* through the
/// recovery ladder: transient SEUs enter the cross-layer masking chain of
/// Fig. 3, while permanent/aging failures (per-PE Weibull hazard folded
/// into the transition rates by the task-level DSE layer) bypass every
/// temporal recovery method — only spatial hardware redundancy masks
/// them. Additive variants may appear in future releases, so the enum is
/// `#[non_exhaustive]`; foreign code should use the accessor methods
/// rather than matching exhaustively.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultMechanism {
    /// Transient single-event upsets only — the paper's Fig. 3 template.
    Transient,
    /// Transient SEUs plus a constant permanent-failure rate over the
    /// task's execution (the per-PE Weibull hazard evaluated at the
    /// platform's mission time). Permanent faults defeat roll-back,
    /// detection and software voting; only `m_hw` (spatial redundancy)
    /// masks them.
    PermanentAging {
        /// Permanent-failure rate `λ_p` in failures/s, added to the SEU
        /// rate when drawing per-interval fault events.
        perm_rate: f64,
    },
}

impl FaultMechanism {
    /// The permanent-failure rate this mechanism adds (0 for transient).
    pub fn perm_rate(&self) -> f64 {
        match self {
            FaultMechanism::Transient => 0.0,
            FaultMechanism::PermanentAging { perm_rate } => *perm_rate,
        }
    }

    /// Whether this is the default transient-only mechanism.
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultMechanism::Transient)
    }

    /// Stable wire encoding `(tag, payload)` used by persistence layers:
    /// `(0, 0)` for transient, `(1, perm_rate bits)` for permanent/aging.
    pub fn encode_words(&self) -> (u64, u64) {
        match self {
            FaultMechanism::Transient => (0, 0),
            FaultMechanism::PermanentAging { perm_rate } => (1, perm_rate.to_bits()),
        }
    }

    /// Inverse of [`FaultMechanism::encode_words`]; `None` for an unknown
    /// tag (a persistence layer reading a future format must treat the
    /// record as foreign, not guess).
    pub fn decode_words(tag: u64, payload: u64) -> Option<Self> {
        match tag {
            0 => Some(FaultMechanism::Transient),
            1 => Some(FaultMechanism::PermanentAging {
                perm_rate: f64::from_bits(payload),
            }),
            _ => None,
        }
    }

    fn validate(&self) -> Result<(), MarkovError> {
        let rate = self.perm_rate();
        if !rate.is_finite() || rate < 0.0 {
            return Err(MarkovError::InvalidProbability {
                from: 0,
                to: 0,
                value: rate,
            });
        }
        Ok(())
    }
}

/// One task's chain specification: flattened CLR parameters plus the
/// fault mechanism routing the events. This is the unit the chain
/// builders, the robust-analysis ladder, and the task-analysis cache key
/// on; the transient-only constructors reproduce the historic
/// `ClrChainParams` behaviour bit-exactly (including the digest).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClrChainSpec {
    /// The flattened per-configuration parameters.
    pub params: ClrChainParams,
    /// The fault mechanism driving the event rate.
    pub mechanism: FaultMechanism,
}

impl ClrChainSpec {
    /// A transient-only spec — the historic default.
    pub fn transient(params: ClrChainParams) -> Self {
        ClrChainSpec {
            params,
            mechanism: FaultMechanism::Transient,
        }
    }

    /// A spec with a permanent/aging rate on top of the SEU rate.
    pub fn permanent_aging(params: ClrChainParams, perm_rate: f64) -> Self {
        ClrChainSpec {
            params,
            mechanism: FaultMechanism::PermanentAging { perm_rate },
        }
    }

    /// Content digest of this spec. For the transient mechanism this is
    /// *exactly* [`ClrChainParams::digest`] — pre-mechanism cache entries
    /// and digest pins stay valid — and for other mechanisms the
    /// mechanism words are folded in with the same FNV-1a stream, so no
    /// two mechanisms can collide on the same parameters.
    pub fn digest(&self) -> u64 {
        match self.mechanism {
            FaultMechanism::Transient => self.params.digest(),
            mechanism => {
                const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
                let (tag, payload) = mechanism.encode_words();
                let mut hash = self.params.digest();
                for word in [tag, payload] {
                    for byte in word.to_le_bytes() {
                        hash ^= u64::from(byte);
                        hash = hash.wrapping_mul(FNV_PRIME);
                    }
                }
                hash
            }
        }
    }

    /// Domain validation of parameters and mechanism.
    ///
    /// # Errors
    ///
    /// As [`analyze`] for parameter violations; an invalid (negative or
    /// non-finite) permanent rate is an [`MarkovError::InvalidProbability`].
    pub fn validate(&self) -> Result<(), MarkovError> {
        self.params.validate()?;
        self.mechanism.validate()
    }
}

/// Task-level reliability metrics extracted from the two chains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskReliability {
    /// Fault-free execution time in seconds.
    pub min_exec_time: f64,
    /// Expected execution time in seconds (timing chain).
    pub avg_exec_time: f64,
    /// Probability of an erroneous result (functional chain).
    pub error_prob: f64,
}

/// Normalized per-interval weights: either uniform (`None`) or the
/// caller-supplied fractions of the useful execution time.
fn interval_weights(
    params: &ClrChainParams,
    weights: Option<&[f64]>,
) -> Result<Vec<f64>, MarkovError> {
    let k = params.intervals.max(1) as usize;
    match weights {
        None => Ok(vec![1.0 / k as f64; k]),
        Some(w) => {
            if w.len() != k {
                return Err(MarkovError::InvalidResidence {
                    state: w.len(),
                    value: k as f64,
                });
            }
            let total: f64 = w.iter().sum();
            if !(total.is_finite()) || total <= 0.0 || w.iter().any(|&x| !x.is_finite() || x <= 0.0)
            {
                return Err(MarkovError::InvalidResidence {
                    state: 0,
                    value: total,
                });
            }
            Ok(w.iter().map(|&x| x / total).collect())
        }
    }
}

struct IntervalStates {
    exec: StateId,
    hw: StateId,
    ssw_impl: StateId,
    ssw_det: StateId,
    ssw_tol: StateId,
    asw: StateId,
    /// Permanent-failure state; present only when the mechanism carries a
    /// non-zero permanent rate, so transient chains keep the historic
    /// state set (and solver trajectories) bit-identically.
    perm: Option<StateId>,
}

enum Escape {
    /// Timing chain: an escaped error still just continues to `cont`.
    Continue,
    /// Functional chain: an escaped error absorbs into `Error`.
    Error(StateId),
}

/// Shared chain skeleton for both variants of Fig. 3, parameterized by
/// the fault mechanism. `weights` selects the fraction of the useful
/// execution time spent in each inter-checkpoint interval (uniform when
/// `None`).
///
/// Mechanisms with a zero permanent rate create the historic state set
/// with the historic float expressions, so transient analyses stay
/// bit-identical to the pre-mechanism implementation.
fn build_chain_spec(
    spec: &ClrChainSpec,
    functional: bool,
    weights: Option<&[f64]>,
) -> Result<(MarkovChain, StateId), MarkovError> {
    spec.validate()?;
    let params = &spec.params;
    let perm_rate = spec.mechanism.perm_rate();
    let k = params.intervals.max(1) as usize;
    let weights = interval_weights(params, weights)?;

    let mut b = MarkovChain::builder();
    // Per-interval state blocks first, then checkpoints, then absorbers.
    let blocks: Vec<IntervalStates> = (0..k)
        .map(|i| IntervalStates {
            exec: b.state(
                format!("Exec{i}"),
                params.exec_time * weights[i] + params.t_det,
            ),
            hw: b.state(format!("HWRel{i}"), 0.0),
            ssw_impl: b.state(format!("SSWImpl{i}"), 0.0),
            ssw_det: b.state(format!("SSWDet{i}"), 0.0),
            ssw_tol: b.state(format!("SSWTol{i}"), params.t_tol),
            asw: b.state(format!("ASWRel{i}"), 0.0),
            perm: (perm_rate > 0.0).then(|| b.state(format!("PermRel{i}"), 0.0)),
        })
        .collect();
    let chks: Vec<StateId> = (0..k.saturating_sub(1))
        .map(|i| b.state(format!("Chkpnt{i}"), params.t_chk))
        .collect();
    let (end, escape) = if functional {
        let no_error = b.absorbing("NoError");
        let error = b.absorbing("Error");
        (no_error, Escape::Error(error))
    } else {
        (b.absorbing("End"), Escape::Continue)
    };

    for (i, s) in blocks.iter().enumerate() {
        let cont = if i + 1 < k { chks[i] } else { end };
        match s.perm {
            None => {
                // Useful execution; the no-error probability is per
                // *interval*.
                let p_ne = (-params.seu_rate * params.exec_time * weights[i]).exp();
                b.transition(s.exec, cont, p_ne);
                b.transition(s.exec, s.hw, 1.0 - p_ne);
            }
            Some(perm) => {
                // Competing exponential risks: total event rate is the
                // SEU rate plus the permanent rate, and an event is
                // transient with probability λ_t / (λ_t + λ_p).
                let lambda = params.seu_rate + perm_rate;
                let p_none = (-lambda * params.exec_time * weights[i]).exp();
                let transient_frac = params.seu_rate / lambda;
                b.transition(s.exec, cont, p_none);
                b.transition(s.exec, s.hw, (1.0 - p_none) * transient_frac);
                b.transition(s.exec, perm, (1.0 - p_none) * (1.0 - transient_frac));
                // Permanent faults bypass the temporal recovery ladder:
                // only spatial hardware redundancy masks them.
                match escape {
                    Escape::Continue => {
                        b.transition(perm, cont, 1.0);
                    }
                    Escape::Error(err) => {
                        b.transition(perm, cont, params.m_hw);
                        b.transition(perm, err, 1.0 - params.m_hw);
                    }
                }
            }
        }
        // Hardware spatial redundancy.
        b.transition(s.hw, cont, params.m_hw);
        b.transition(s.hw, s.ssw_impl, 1.0 - params.m_hw);
        // Implicit system-software masking.
        b.transition(s.ssw_impl, cont, params.m_impl_ssw);
        b.transition(s.ssw_impl, s.ssw_det, 1.0 - params.m_impl_ssw);
        // Detection and tolerance.
        b.transition(s.ssw_det, s.ssw_tol, params.cov_det);
        b.transition(s.ssw_det, s.asw, 1.0 - params.cov_det);
        b.transition(s.ssw_tol, s.exec, params.m_tol); // roll back / retry
        match escape {
            Escape::Continue => {
                b.transition(s.ssw_tol, cont, 1.0 - params.m_tol);
                b.transition(s.asw, cont, 1.0);
            }
            Escape::Error(err) => {
                b.transition(s.ssw_tol, err, 1.0 - params.m_tol);
                b.transition(s.asw, cont, params.m_asw);
                b.transition(s.asw, err, 1.0 - params.m_asw);
            }
        }
    }
    for (i, &chk) in chks.iter().enumerate() {
        let next = blocks[i + 1].exec;
        match escape {
            Escape::Continue => {
                b.transition(chk, next, 1.0);
            }
            Escape::Error(err) => {
                b.transition(chk, next, 1.0 - params.p_chk_err);
                b.transition(chk, err, params.p_chk_err);
            }
        }
    }
    let start = blocks[0].exec;
    Ok((b.build()?, start))
}

/// Builds the timing-reliability chain (Fig. 3(a)) for a mechanism-aware
/// spec and returns it with its start state.
///
/// # Errors
///
/// Returns [`MarkovError`] for out-of-domain parameters or mechanism.
pub fn timing_chain_spec(spec: &ClrChainSpec) -> Result<(MarkovChain, StateId), MarkovError> {
    build_chain_spec(spec, false, None)
}

/// Builds the functional-reliability chain (Fig. 3(b)) for a
/// mechanism-aware spec and returns it with its start state.
///
/// # Errors
///
/// Returns [`MarkovError`] for out-of-domain parameters or mechanism.
pub fn functional_chain_spec(spec: &ClrChainSpec) -> Result<(MarkovChain, StateId), MarkovError> {
    build_chain_spec(spec, true, None)
}

/// Builds the transient timing-reliability chain (Fig. 3(a)) and returns
/// it with its start state.
///
/// # Errors
///
/// Returns [`MarkovError`] for out-of-domain parameters.
pub fn timing_chain(params: &ClrChainParams) -> Result<(MarkovChain, StateId), MarkovError> {
    timing_chain_spec(&ClrChainSpec::transient(*params))
}

/// Builds the transient functional-reliability chain (Fig. 3(b)) and
/// returns it with its start state. Absorbing state 0 is `NoError`, state
/// 1 is `Error`.
///
/// # Errors
///
/// Returns [`MarkovError`] for out-of-domain parameters.
pub fn functional_chain(params: &ClrChainParams) -> Result<(MarkovChain, StateId), MarkovError> {
    functional_chain_spec(&ClrChainSpec::transient(*params))
}

/// Like [`analyze`] but with *unequal* inter-checkpoint intervals — one
/// of the modeling capabilities the paper attributes to the Markov-chain
/// approach. `weights[i]` is the relative share of the useful execution
/// time spent in interval `i`; the weights are normalized internally.
///
/// # Errors
///
/// [`MarkovError::InvalidResidence`] if `weights.len() != intervals` or
/// any weight is non-positive; otherwise as for [`analyze`].
///
/// # Examples
///
/// ```
/// use clre_markov::clr::{analyze, analyze_with_intervals, ClrChainParams};
///
/// # fn main() -> Result<(), clre_markov::MarkovError> {
/// let p = ClrChainParams {
///     cov_det: 0.95, m_tol: 0.98, intervals: 3,
///     t_det: 5e-6, t_tol: 5e-6, t_chk: 8e-6,
///     ..ClrChainParams::unprotected(300e-6, 2000.0)
/// };
/// // Uniform weights reproduce the equal-interval analysis exactly.
/// let uniform = analyze_with_intervals(&p, &[1.0, 1.0, 1.0])?;
/// let equal = analyze(&p)?;
/// assert!((uniform.avg_exec_time - equal.avg_exec_time).abs() < 1e-15);
/// // A skewed split changes the expected time.
/// let skewed = analyze_with_intervals(&p, &[0.6, 0.3, 0.1])?;
/// assert!(skewed.avg_exec_time != equal.avg_exec_time);
/// # Ok(())
/// # }
/// ```
pub fn analyze_with_intervals(
    params: &ClrChainParams,
    weights: &[f64],
) -> Result<TaskReliability, MarkovError> {
    analyze_with_intervals_spec(&ClrChainSpec::transient(*params), weights)
}

/// [`analyze_with_intervals`] for a mechanism-aware spec.
///
/// # Errors
///
/// As [`analyze_with_intervals`].
pub fn analyze_with_intervals_spec(
    spec: &ClrChainSpec,
    weights: &[f64],
) -> Result<TaskReliability, MarkovError> {
    let (timing, t_start) = build_chain_spec(spec, false, Some(weights))?;
    let avg_exec_time = timing.expected_time_to_absorption(t_start)?;
    let (func, f_start) = build_chain_spec(spec, true, Some(weights))?;
    let probs = func.absorption_probabilities(f_start)?;
    let error = func
        .absorbing_states()
        .into_iter()
        .find(|&s| func.state_name(s) == "Error")
        .expect("functional chain has an Error state");
    Ok(TaskReliability {
        min_exec_time: spec.params.min_exec_time(),
        avg_exec_time,
        error_prob: clre_num::util::clamp_prob(probs[&error]),
    })
}

/// Outcome of a robust analysis: the metrics plus flags recording
/// whether the scaled-pivoting retry ran and whether the degraded
/// closed-form fallback ultimately produced them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustAnalysis {
    /// The task-level reliability metrics (exact or degraded).
    pub reliability: TaskReliability,
    /// `true` when both exact solvers failed and the single-interval
    /// closed form supplied an approximation instead.
    pub degraded: bool,
    /// `true` when the primary solver failed and the scaled-pivoting
    /// retry was attempted (whether or not it succeeded).
    pub retried: bool,
}

/// Like [`analyze`], but numeric failures of the matrix solver are
/// *retried* once with row-scaled partial-pivot LU ([`analyze_scaled`])
/// and only then degrade to the loop-free [`crate::closed_form`]
/// approximation instead of aborting the caller.
///
/// The fallback collapses the configuration to a single inter-checkpoint
/// interval, solves it exactly, then re-adds the deterministic per-interval
/// detection and checkpoint overheads and folds checkpoint corruption back
/// in as an independent error floor. The result is exact in the fault-free
/// limit (`λ = 0`) and a close approximation (first-order in `λ·T`)
/// otherwise; it is tagged `degraded: true` so callers can surface it in
/// run health reports. A successful retry is tagged `retried: true` with
/// `degraded: false` — the answer is still exact, just from the more
/// careful factorization.
///
/// # Errors
///
/// Out-of-domain parameters still fail — degraded mode papers over
/// *numeric* trouble, not invalid inputs. [`MarkovError::NotAbsorbing`]
/// is returned only when the closed form agrees the configuration loops
/// forever.
pub fn analyze_robust(params: &ClrChainParams) -> Result<RobustAnalysis, MarkovError> {
    analyze_robust_spec(&ClrChainSpec::transient(*params))
}

/// [`analyze_robust`] for a mechanism-aware spec: the same
/// retry-then-degrade ladder over the spec's chain templates, with the
/// closed-form fallback solved under the same mechanism.
///
/// # Errors
///
/// As [`analyze_robust`].
pub fn analyze_robust_spec(spec: &ClrChainSpec) -> Result<RobustAnalysis, MarkovError> {
    analyze_robust_with_spec(spec, analyze_spec, analyze_scaled_spec)
}

/// [`analyze_robust`] with injectable primary and retry solvers — the
/// seam used by fault-injection tests to prove the retry and fallback
/// engage on [`MarkovError::Numeric`] / non-finite results without
/// aborting.
///
/// # Errors
///
/// As for [`analyze_robust`].
pub fn analyze_robust_with(
    params: &ClrChainParams,
    primary: impl Fn(&ClrChainParams) -> Result<TaskReliability, MarkovError>,
    retry: impl Fn(&ClrChainParams) -> Result<TaskReliability, MarkovError>,
) -> Result<RobustAnalysis, MarkovError> {
    analyze_robust_with_spec(
        &ClrChainSpec::transient(*params),
        |s| primary(&s.params),
        |s| retry(&s.params),
    )
}

/// [`analyze_robust_spec`] with injectable primary and retry solvers —
/// the mechanism-aware form of the fault-injection seam.
///
/// # Errors
///
/// As for [`analyze_robust`].
pub fn analyze_robust_with_spec(
    spec: &ClrChainSpec,
    primary: impl Fn(&ClrChainSpec) -> Result<TaskReliability, MarkovError>,
    retry: impl Fn(&ClrChainSpec) -> Result<TaskReliability, MarkovError>,
) -> Result<RobustAnalysis, MarkovError> {
    let finite = |r: &TaskReliability| r.avg_exec_time.is_finite() && r.error_prob.is_finite();
    match primary(spec) {
        Ok(r) if finite(&r) => Ok(RobustAnalysis {
            reliability: r,
            degraded: false,
            retried: false,
        }),
        // Non-finite metrics or a numeric/absorption failure: retry the
        // exact solver once with scaled pivoting before approximating.
        Ok(_) | Err(MarkovError::Numeric(_)) | Err(MarkovError::NotAbsorbing) => {
            match retry(spec) {
                Ok(r) if finite(&r) => Ok(RobustAnalysis {
                    reliability: r,
                    degraded: false,
                    retried: true,
                }),
                Ok(_) | Err(MarkovError::Numeric(_)) | Err(MarkovError::NotAbsorbing) => {
                    Ok(RobustAnalysis {
                        reliability: closed_form_fallback(spec)?,
                        degraded: true,
                        retried: true,
                    })
                }
                Err(e) => Err(e),
            }
        }
        // Domain errors (bad probabilities, negative times, …) are the
        // caller's bug; no approximation can repair them.
        Err(e) => Err(e),
    }
}

/// Deterministic solver-singularity fault schedule for the chaos layer.
///
/// Decisions are pure functions of `(seed, params digest, stage)` —
/// content-addressed like every other fault plan — so a seeded run
/// injects the identical set of LU failures across reruns, worker counts
/// and library-build orders. `primary_ppm` fails the plain LU solve;
/// `retry_ppm` additionally fails the scaled-pivoting retry, driving the
/// analysis into the degraded closed-form fallback (which chaosbench
/// records as a degraded-mode delta, never as silent corruption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverFaultPlan {
    /// Salt for the per-analysis decisions.
    pub seed: u64,
    /// Probability (parts-per-million) the primary LU solve fails.
    pub primary_ppm: u32,
    /// Probability (parts-per-million) the scaled retry *also* fails.
    pub retry_ppm: u32,
}

impl SolverFaultPlan {
    /// A plan with the given seed and per-stage failure rates.
    pub fn new(seed: u64, primary_ppm: u32, retry_ppm: u32) -> Self {
        SolverFaultPlan {
            seed,
            primary_ppm,
            retry_ppm,
        }
    }

    /// FNV-1a over `seed ‖ digest ‖ stage`, reduced to a ppm draw.
    fn fires(&self, digest: u64, stage: u64, ppm: u32) -> bool {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for word in [self.seed, digest, stage] {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        hash % 1_000_000 < u64::from(ppm)
    }

    /// Whether the primary solve of the analysis keyed by `digest` fails.
    pub fn primary_fails(&self, digest: u64) -> bool {
        self.fires(digest, 0, self.primary_ppm)
    }

    /// Whether the scaled retry of the analysis keyed by `digest` fails.
    pub fn retry_fails(&self, digest: u64) -> bool {
        self.fires(digest, 1, self.retry_ppm)
    }
}

/// [`analyze_robust`] under an injected [`SolverFaultPlan`]: scheduled
/// LU singularities replace the primary (and optionally the retry)
/// solver's answer with [`MarkovError::Numeric`], exercising the full
/// retry → closed-form recovery ladder on otherwise-healthy parameters.
///
/// # Errors
///
/// As for [`analyze_robust`].
pub fn analyze_robust_chaos(
    params: &ClrChainParams,
    plan: &SolverFaultPlan,
) -> Result<RobustAnalysis, MarkovError> {
    analyze_robust_chaos_spec(&ClrChainSpec::transient(*params), plan)
}

/// [`analyze_robust_chaos`] for a mechanism-aware spec; fault decisions
/// key on [`ClrChainSpec::digest`], which equals the parameter digest for
/// transient specs (so pre-mechanism chaos schedules replay identically).
///
/// # Errors
///
/// As for [`analyze_robust`].
pub fn analyze_robust_chaos_spec(
    spec: &ClrChainSpec,
    plan: &SolverFaultPlan,
) -> Result<RobustAnalysis, MarkovError> {
    let digest = spec.digest();
    // `pivot: usize::MAX` marks the singularity as synthetic in logs.
    let injected = || MarkovError::Numeric(clre_num::NumError::Singular { pivot: usize::MAX });
    analyze_robust_with_spec(
        spec,
        |s| {
            if plan.primary_fails(digest) {
                Err(injected())
            } else {
                analyze_spec(s)
            }
        },
        |s| {
            if plan.retry_fails(digest) {
                Err(injected())
            } else {
                analyze_scaled_spec(s)
            }
        },
    )
}

/// Degraded-mode approximation: single-interval closed form plus the
/// deterministic multi-interval overheads and a checkpoint-corruption
/// error floor.
fn closed_form_fallback(spec: &ClrChainSpec) -> Result<TaskReliability, MarkovError> {
    let params = &spec.params;
    let collapsed = ClrChainSpec {
        params: ClrChainParams {
            intervals: 1,
            ..*params
        },
        mechanism: spec.mechanism,
    };
    let base = crate::closed_form::analyze_spec(&collapsed)?;
    // Deterministic overhead the collapse dropped: (k−1) extra detection
    // phases and (k−1) checkpoints on the fault-free path.
    let overhead = params.min_exec_time() - collapsed.params.min_exec_time();
    // Checkpoint creation corrupts state independently per checkpoint;
    // fold the (k−1) corruption chances the collapse removed back in as
    // an independent error floor (exact when λ = 0).
    let k = params.intervals.max(1) as i32;
    let p_chk_ok = (1.0 - params.p_chk_err).powi(k - 1);
    Ok(TaskReliability {
        min_exec_time: params.min_exec_time(),
        avg_exec_time: base.avg_exec_time + overhead,
        error_prob: clre_num::util::clamp_prob(1.0 - (1.0 - base.error_prob) * p_chk_ok),
    })
}

/// Runs both chains and extracts the task-level reliability metrics.
///
/// # Errors
///
/// Returns [`MarkovError`] for out-of-domain parameters, or
/// [`MarkovError::NotAbsorbing`] for degenerate configurations that can
/// loop forever (requires `m_Tol = 1` *and* `p_ne = 0`, which the built-in
/// method catalogs cannot produce).
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn analyze(params: &ClrChainParams) -> Result<TaskReliability, MarkovError> {
    analyze_via_spec(&ClrChainSpec::transient(*params), false)
}

/// [`analyze`] solving both chains with row-scaled partial-pivot LU —
/// the retry path [`analyze_robust`] attempts when the plain solver
/// fails numerically. Slightly costlier per factorization but robust to
/// badly row-scaled `I − Q` blocks.
///
/// # Errors
///
/// As for [`analyze`].
pub fn analyze_scaled(params: &ClrChainParams) -> Result<TaskReliability, MarkovError> {
    analyze_via_spec(&ClrChainSpec::transient(*params), true)
}

/// [`analyze`] for a mechanism-aware [`ClrChainSpec`]. For
/// [`FaultMechanism::Transient`] this is bit-identical to
/// `analyze(&spec.params)`.
///
/// # Errors
///
/// As for [`analyze`].
pub fn analyze_spec(spec: &ClrChainSpec) -> Result<TaskReliability, MarkovError> {
    analyze_via_spec(spec, false)
}

/// [`analyze_scaled`] for a mechanism-aware [`ClrChainSpec`].
///
/// # Errors
///
/// As for [`analyze`].
pub fn analyze_scaled_spec(spec: &ClrChainSpec) -> Result<TaskReliability, MarkovError> {
    analyze_via_spec(spec, true)
}

fn analyze_via_spec(spec: &ClrChainSpec, scaled: bool) -> Result<TaskReliability, MarkovError> {
    let (timing, t_start) = timing_chain_spec(spec)?;
    let avg_exec_time = if scaled {
        timing.expected_time_to_absorption_scaled(t_start)?
    } else {
        timing.expected_time_to_absorption(t_start)?
    };
    let (func, f_start) = functional_chain_spec(spec)?;
    let probs = if scaled {
        func.absorption_probabilities_scaled(f_start)?
    } else {
        func.absorption_probabilities(f_start)?
    };
    let error = func
        .absorbing_states()
        .into_iter()
        .find(|&s| func.state_name(s) == "Error")
        .expect("functional chain has an Error state");
    let error_prob = clre_num::util::clamp_prob(probs[&error]);
    Ok(TaskReliability {
        min_exec_time: spec.params.min_exec_time(),
        avg_exec_time,
        error_prob,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ClrChainParams {
        ClrChainParams {
            exec_time: 300.0e-6,
            seu_rate: 100.0,
            m_hw: 0.0,
            m_impl_ssw: 0.0,
            cov_det: 0.0,
            m_tol: 0.0,
            m_asw: 0.0,
            intervals: 1,
            t_det: 0.0,
            t_tol: 0.0,
            t_chk: 0.0,
            p_chk_err: 0.0,
        }
    }

    #[test]
    fn digest_is_exact_bits() {
        let p = base();
        assert_eq!(p.digest(), base().digest(), "digest is a pure function");

        // Any single-field change — even a sign flip on zero — must move
        // the digest: the cache keys on exact bit patterns.
        let mut q = base();
        q.t_det = -0.0;
        assert_ne!(p.digest(), q.digest(), "-0.0 and 0.0 are distinct keys");
        let mut q = base();
        q.intervals = 2;
        assert_ne!(p.digest(), q.digest());
        let mut q = base();
        q.exec_time = f64::from_bits(p.exec_time.to_bits() ^ 1);
        assert_ne!(p.digest(), q.digest(), "one ULP is a different key");
    }

    #[test]
    fn unprotected_matches_closed_form() {
        let p = ClrChainParams::unprotected(300.0e-6, 100.0);
        let r = analyze(&p).unwrap();
        let p_err = 1.0 - (-100.0 * 300.0e-6f64).exp();
        assert!((r.error_prob - p_err).abs() < 1e-12);
        assert!((r.avg_exec_time - 300.0e-6).abs() < 1e-12);
        assert_eq!(r.min_exec_time, 300.0e-6);
    }

    #[test]
    fn hw_masking_reduces_error_not_time() {
        let mut p = base();
        let r0 = analyze(&p).unwrap();
        p.m_hw = 0.9;
        let r1 = analyze(&p).unwrap();
        assert!(r1.error_prob < r0.error_prob);
        assert!((r1.error_prob / r0.error_prob - 0.1).abs() < 1e-9);
        assert!((r1.avg_exec_time - r0.avg_exec_time).abs() < 1e-15);
    }

    #[test]
    fn implicit_masking_stacks_multiplicatively() {
        let mut p = base();
        p.m_hw = 0.5;
        p.m_impl_ssw = 0.2;
        let r = analyze(&p).unwrap();
        let raw = 1.0 - (-100.0 * 300.0e-6f64).exp();
        assert!((r.error_prob - raw * 0.5 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn asw_masks_undetected_errors() {
        let mut p = base();
        p.m_asw = 0.93;
        let r = analyze(&p).unwrap();
        let raw = 1.0 - (-100.0 * 300.0e-6f64).exp();
        assert!((r.error_prob - raw * (1.0 - 0.93)).abs() < 1e-12);
    }

    #[test]
    fn retry_trades_time_for_reliability() {
        let mut p = base();
        p.cov_det = 0.9;
        p.m_tol = 0.97;
        p.t_det = 15.0e-6;
        p.t_tol = 6.0e-6;
        let r = analyze(&p).unwrap();
        let unprotected = analyze(&base()).unwrap();
        assert!(r.error_prob < 0.25 * unprotected.error_prob);
        assert!(r.avg_exec_time > unprotected.avg_exec_time);
        assert_eq!(r.min_exec_time, 300.0e-6 + 15.0e-6);
    }

    #[test]
    fn checkpointing_bounds_reexecution_time() {
        // With detection on, more intervals cut the re-execution cost per
        // detected error, so average time decreases with k at high λ.
        let mut p = base();
        p.seu_rate = 3000.0; // very faulty environment
        p.cov_det = 0.95;
        p.m_tol = 0.98;
        p.t_det = 3.0e-6;
        p.t_tol = 3.0e-6;
        p.t_chk = 2.0e-6;
        p.intervals = 1;
        let r1 = analyze(&p).unwrap();
        p.intervals = 4;
        let r4 = analyze(&p).unwrap();
        assert!(
            r4.avg_exec_time < r1.avg_exec_time,
            "k=4 {} should beat k=1 {}",
            r4.avg_exec_time,
            r1.avg_exec_time
        );
        // And min time grows with checkpoint overhead.
        assert!(r4.min_exec_time > r1.min_exec_time);
    }

    #[test]
    fn checkpoint_corruption_adds_error_floor() {
        let mut p = base();
        p.intervals = 3;
        p.cov_det = 0.99;
        p.m_tol = 0.99;
        p.m_hw = 0.9;
        p.m_asw = 0.9;
        p.p_chk_err = 0.0;
        let clean = analyze(&p).unwrap();
        p.p_chk_err = 0.01;
        let dirty = analyze(&p).unwrap();
        assert!(dirty.error_prob > clean.error_prob + 0.015);
    }

    #[test]
    fn absorption_probs_sum_to_one() {
        let mut p = base();
        p.m_hw = 0.7;
        p.cov_det = 0.95;
        p.m_tol = 0.98;
        p.m_asw = 0.55;
        p.intervals = 3;
        p.p_chk_err = 1e-4;
        let (c, s) = functional_chain(&p).unwrap();
        let probs = c.absorption_probabilities(s).unwrap();
        let total: f64 = probs.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chain_shapes() {
        let mut p = base();
        p.intervals = 3;
        let (t, _) = timing_chain(&p).unwrap();
        // 3 blocks × 6 states + 2 checkpoints + End.
        assert_eq!(t.state_count(), 3 * 6 + 2 + 1);
        assert_eq!(t.absorbing_states().len(), 1);
        let (f, _) = functional_chain(&p).unwrap();
        assert_eq!(f.state_count(), 3 * 6 + 2 + 2);
        assert_eq!(f.absorbing_states().len(), 2);
    }

    #[test]
    fn unequal_intervals_uniform_matches_equal() {
        let mut p = base();
        p.intervals = 4;
        p.cov_det = 0.95;
        p.m_tol = 0.98;
        p.t_det = 4.0e-6;
        p.t_tol = 2.0e-6;
        p.t_chk = 3.0e-6;
        p.seu_rate = 1500.0;
        let equal = analyze(&p).unwrap();
        let uniform = analyze_with_intervals(&p, &[2.0, 2.0, 2.0, 2.0]).unwrap();
        assert!((equal.avg_exec_time - uniform.avg_exec_time).abs() < 1e-15);
        assert!((equal.error_prob - uniform.error_prob).abs() < 1e-15);
    }

    #[test]
    fn front_loading_work_beats_back_loading_under_rising_risk() {
        // With roll-back recovery, an error in a *long* interval wastes
        // more time. Since every interval is equally error-prone per unit
        // time, the expected time depends on how re-execution cost is
        // distributed — both skews must at least differ from uniform and
        // mirror each other (symmetry of the chain in interval order for
        // timing is broken only by checkpoint placement).
        let mut p = base();
        p.intervals = 2;
        p.cov_det = 0.95;
        p.m_tol = 0.98;
        p.t_tol = 2.0e-6;
        p.t_chk = 3.0e-6;
        p.seu_rate = 3000.0;
        let uniform = analyze_with_intervals(&p, &[1.0, 1.0]).unwrap();
        let front = analyze_with_intervals(&p, &[0.8, 0.2]).unwrap();
        let back = analyze_with_intervals(&p, &[0.2, 0.8]).unwrap();
        assert!(front.avg_exec_time > uniform.avg_exec_time);
        assert!(back.avg_exec_time > uniform.avg_exec_time);
        // Uniform intervals minimize expected re-execution for equal
        // per-unit risk — the classic equidistant-checkpoint result.
        assert!((front.avg_exec_time - back.avg_exec_time).abs() < 1e-9);
    }

    #[test]
    fn unequal_intervals_validate_weights() {
        let mut p = base();
        p.intervals = 3;
        assert!(analyze_with_intervals(&p, &[1.0, 1.0]).is_err()); // wrong len
        assert!(analyze_with_intervals(&p, &[1.0, -1.0, 1.0]).is_err());
        assert!(analyze_with_intervals(&p, &[0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn rejects_out_of_domain_parameters() {
        let mut p = base();
        p.m_hw = 1.5;
        assert!(analyze(&p).is_err());
        let mut p = base();
        p.exec_time = 0.0;
        assert!(analyze(&p).is_err());
        let mut p = base();
        p.seu_rate = -1.0;
        assert!(analyze(&p).is_err());
        let mut p = base();
        p.t_tol = f64::NAN;
        assert!(analyze(&p).is_err());
    }

    #[test]
    fn robust_passthrough_when_solver_healthy() {
        let mut p = base();
        p.m_hw = 0.6;
        p.intervals = 2;
        let r = analyze_robust(&p).unwrap();
        assert!(!r.degraded);
        assert!(!r.retried);
        assert_eq!(r.reliability, analyze(&p).unwrap());
    }

    #[test]
    fn robust_degrades_on_injected_numeric_failure() {
        let mut p = base();
        p.cov_det = 0.9;
        p.m_tol = 0.97;
        p.t_det = 5.0e-6;
        let fail = |_: &ClrChainParams| -> Result<TaskReliability, MarkovError> {
            Err(MarkovError::Numeric(clre_num::NumError::Singular {
                pivot: 0,
            }))
        };
        let r = analyze_robust_with(&p, fail, fail).unwrap();
        assert!(r.degraded);
        assert!(r.retried);
        // Single interval: fallback is the exact closed form.
        let exact = analyze(&p).unwrap();
        assert!((r.reliability.avg_exec_time - exact.avg_exec_time).abs() < 1e-12);
        assert!((r.reliability.error_prob - exact.error_prob).abs() < 1e-12);
    }

    #[test]
    fn robust_degrades_on_nonfinite_metrics() {
        let p = base();
        let poison = |q: &ClrChainParams| {
            let mut m = analyze(q)?;
            m.avg_exec_time = f64::NAN;
            Ok(m)
        };
        let r = analyze_robust_with(&p, poison, poison).unwrap();
        assert!(r.degraded);
        assert!(r.retried);
        assert!(r.reliability.avg_exec_time.is_finite());
    }

    #[test]
    fn scaled_retry_rescues_failed_primary_without_degrading() {
        let mut p = base();
        p.m_hw = 0.6;
        p.intervals = 3;
        p.cov_det = 0.9;
        p.t_chk = 2.0e-6;
        let r = analyze_robust_with(
            &p,
            |_| {
                Err(MarkovError::Numeric(clre_num::NumError::Singular {
                    pivot: 1,
                }))
            },
            analyze_scaled,
        )
        .unwrap();
        assert!(!r.degraded, "successful retry must not be tagged degraded");
        assert!(r.retried);
        // The rescued answer is the exact solver's, not the closed form's.
        let exact = analyze(&p).unwrap();
        assert!((r.reliability.avg_exec_time - exact.avg_exec_time).abs() < 1e-12);
        assert!((r.reliability.error_prob - exact.error_prob).abs() < 1e-12);
    }

    #[test]
    fn analyze_scaled_matches_plain_analysis() {
        let mut p = base();
        p.m_hw = 0.8;
        p.cov_det = 0.95;
        p.m_tol = 0.98;
        p.intervals = 4;
        p.t_det = 5.0e-6;
        p.t_chk = 3.0e-6;
        p.p_chk_err = 0.01;
        let plain = analyze(&p).unwrap();
        let scaled = analyze_scaled(&p).unwrap();
        assert!((plain.avg_exec_time - scaled.avg_exec_time).abs() / plain.avg_exec_time < 1e-12);
        assert!((plain.error_prob - scaled.error_prob).abs() < 1e-12);
        assert_eq!(plain.min_exec_time, scaled.min_exec_time);
    }

    #[test]
    fn robust_fallback_is_exact_in_fault_free_limit() {
        let mut p = base();
        p.seu_rate = 0.0;
        p.intervals = 4;
        p.cov_det = 0.9;
        p.t_det = 5.0e-6;
        p.t_chk = 3.0e-6;
        let exact = analyze(&p).unwrap();
        let fail = |_: &ClrChainParams| -> Result<TaskReliability, MarkovError> {
            Err(MarkovError::Numeric(clre_num::NumError::RaggedRows))
        };
        let degraded = analyze_robust_with(&p, fail, fail).unwrap();
        assert!(degraded.degraded);
        assert!((degraded.reliability.avg_exec_time - exact.avg_exec_time).abs() < 1e-15);
        assert_eq!(degraded.reliability.error_prob, exact.error_prob);
        assert_eq!(degraded.reliability.min_exec_time, exact.min_exec_time);
    }

    #[test]
    fn robust_fallback_tracks_exact_multi_interval_solution() {
        // Collapsing intervals is first-order exact in λ·T: the degraded
        // answer must stay within 1% (relative) of the matrix solution.
        let mut p = base();
        p.intervals = 3;
        p.m_hw = 0.8;
        p.cov_det = 0.95;
        p.m_tol = 0.98;
        p.p_chk_err = 0.01;
        p.t_chk = 2.0e-6;
        let exact = analyze(&p).unwrap();
        let fail = |_: &ClrChainParams| -> Result<TaskReliability, MarkovError> {
            Err(MarkovError::NotAbsorbing)
        };
        let degraded = analyze_robust_with(&p, fail, fail).unwrap();
        assert!(degraded.degraded);
        let rel = (degraded.reliability.error_prob - exact.error_prob).abs() / exact.error_prob;
        assert!(rel < 1e-2, "relative error {rel}");
        let rel_t =
            (degraded.reliability.avg_exec_time - exact.avg_exec_time).abs() / exact.avg_exec_time;
        assert!(rel_t < 1e-2, "relative time error {rel_t}");
    }

    #[test]
    fn robust_propagates_domain_errors() {
        let mut p = base();
        p.m_hw = 1.5;
        assert!(analyze_robust(&p).is_err());
    }

    #[test]
    fn solver_fault_plan_is_deterministic_and_salted() {
        let plan = SolverFaultPlan::new(42, 200_000, 100_000);
        let digests: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let primary: Vec<bool> = digests.iter().map(|&d| plan.primary_fails(d)).collect();
        assert!(primary.iter().any(|&b| b), "20% of 200 draws should fire");
        assert!(!primary.iter().all(|&b| b));
        // Pure in (seed, digest, stage): reruns and the two stages agree
        // with themselves, a different seed disagrees somewhere.
        assert_eq!(
            primary,
            digests
                .iter()
                .map(|&d| plan.primary_fails(d))
                .collect::<Vec<_>>()
        );
        let other = SolverFaultPlan::new(43, 200_000, 100_000);
        assert_ne!(
            primary,
            digests
                .iter()
                .map(|&d| other.primary_fails(d))
                .collect::<Vec<_>>()
        );
        let never = SolverFaultPlan::new(42, 0, 0);
        assert!(digests.iter().all(|&d| !never.primary_fails(d)));
    }

    #[test]
    fn injected_solver_faults_walk_the_recovery_ladder() {
        let p = base();
        let exact = analyze_robust(&p).unwrap();
        assert!(!exact.retried && !exact.degraded);
        // Primary always fails → the scaled retry answers, exactly.
        let retry_only = analyze_robust_chaos(&p, &SolverFaultPlan::new(1, 1_000_000, 0)).unwrap();
        assert!(retry_only.retried && !retry_only.degraded);
        assert_eq!(
            retry_only.reliability.error_prob.to_bits(),
            analyze_scaled(&p).unwrap().error_prob.to_bits(),
            "a successful retry is the scaled solver's exact answer"
        );
        // Both fail → degraded closed form, still close to exact.
        let degraded =
            analyze_robust_chaos(&p, &SolverFaultPlan::new(1, 1_000_000, 1_000_000)).unwrap();
        assert!(degraded.retried && degraded.degraded);
        let rel = (degraded.reliability.avg_exec_time - exact.reliability.avg_exec_time).abs()
            / exact.reliability.avg_exec_time;
        assert!(rel < 1e-2, "fallback stays close: {rel}");
        // No plan firing → bit-identical to the fault-free analysis.
        let calm = analyze_robust_chaos(&p, &SolverFaultPlan::new(1, 0, 0)).unwrap();
        assert_eq!(calm, exact);
    }

    #[test]
    fn zero_seu_rate_is_fault_free() {
        let mut p = base();
        p.seu_rate = 0.0;
        p.cov_det = 0.9;
        p.m_tol = 0.97;
        p.t_det = 10.0e-6;
        let r = analyze(&p).unwrap();
        assert_eq!(r.error_prob, 0.0);
        assert!((r.avg_exec_time - r.min_exec_time).abs() < 1e-15);
    }

    fn protected() -> ClrChainParams {
        ClrChainParams {
            m_hw: 0.7,
            m_impl_ssw: 0.05,
            cov_det: 0.9,
            m_tol: 0.97,
            m_asw: 0.55,
            t_det: 10.0e-6,
            t_tol: 5.0e-6,
            ..base()
        }
    }

    #[test]
    fn zero_perm_rate_is_bit_identical_to_transient() {
        let p = protected();
        let transient = analyze(&p).unwrap();
        let zero_perm = analyze_spec(&ClrChainSpec::permanent_aging(p, 0.0)).unwrap();
        assert_eq!(
            transient.error_prob.to_bits(),
            zero_perm.error_prob.to_bits()
        );
        assert_eq!(
            transient.avg_exec_time.to_bits(),
            zero_perm.avg_exec_time.to_bits()
        );
        // The chain itself must also not grow a PermRel state at rate 0:
        // same state count → same solver trajectory.
        let (plain, _) = functional_chain(&p).unwrap();
        let (gated, _) = functional_chain_spec(&ClrChainSpec::permanent_aging(p, 0.0)).unwrap();
        assert_eq!(plain.state_count(), gated.state_count());
    }

    #[test]
    fn permanent_chain_adds_one_state_per_interval() {
        let p = ClrChainParams {
            intervals: 3,
            t_chk: 12.0e-6,
            p_chk_err: 1.0e-4,
            ..protected()
        };
        let spec = ClrChainSpec::permanent_aging(p, 40.0);
        let (plain, _) = functional_chain(&p).unwrap();
        let (perm, _) = functional_chain_spec(&spec).unwrap();
        assert_eq!(
            perm.state_count(),
            plain.state_count() + 3,
            "one PermRel state per inter-checkpoint interval"
        );
    }

    #[test]
    fn permanent_error_prob_is_monotone_in_perm_rate() {
        let p = protected();
        let mut last = analyze(&p).unwrap().error_prob;
        for rate in [1.0, 10.0, 100.0, 1000.0] {
            let r = analyze_spec(&ClrChainSpec::permanent_aging(p, rate)).unwrap();
            assert!(
                r.error_prob > last,
                "perm_rate {rate}: {} should exceed {last}",
                r.error_prob
            );
            last = r.error_prob;
        }
    }

    #[test]
    fn hardware_redundancy_masks_permanent_faults() {
        // Permanent faults bypass checkpointing and ASW coding, so raising
        // temporal-protection knobs leaves the permanent residue intact,
        // while raising m_hw (spatial redundancy / TMR) suppresses it.
        let exposed = ClrChainParams {
            m_hw: 0.0,
            ..protected()
        };
        let spatial = ClrChainParams {
            m_hw: 0.95,
            ..protected()
        };
        let rate = 200.0;
        let e = analyze_spec(&ClrChainSpec::permanent_aging(exposed, rate)).unwrap();
        let s = analyze_spec(&ClrChainSpec::permanent_aging(spatial, rate)).unwrap();
        assert!(
            s.error_prob < e.error_prob * 0.2,
            "{} vs {}",
            s.error_prob,
            e.error_prob
        );
        // Cranking software tolerance instead barely moves the floor.
        let temporal = ClrChainParams {
            cov_det: 0.999,
            m_tol: 0.999,
            m_asw: 0.999,
            ..exposed
        };
        let t = analyze_spec(&ClrChainSpec::permanent_aging(temporal, rate)).unwrap();
        let perm_only_floor = analyze_spec(&ClrChainSpec::permanent_aging(
            ClrChainParams {
                seu_rate: 0.0,
                ..exposed
            },
            rate,
        ))
        .unwrap()
        .error_prob;
        assert!(
            t.error_prob >= perm_only_floor * 0.99,
            "software knobs cannot dig below the permanent floor: {} vs {perm_only_floor}",
            t.error_prob
        );
    }

    #[test]
    fn spec_digest_separates_mechanisms() {
        let p = protected();
        let transient = ClrChainSpec::transient(p);
        assert_eq!(
            transient.digest(),
            p.digest(),
            "transient spec digests are the historic parameter digests"
        );
        let perm = ClrChainSpec::permanent_aging(p, 40.0);
        assert_ne!(perm.digest(), transient.digest());
        assert_ne!(
            perm.digest(),
            ClrChainSpec::permanent_aging(p, 41.0).digest(),
            "digest keys on the exact permanent rate"
        );
        // Wire encoding round-trips and rejects unknown tags.
        let (tag, payload) = perm.mechanism.encode_words();
        assert_eq!(
            FaultMechanism::decode_words(tag, payload),
            Some(perm.mechanism)
        );
        assert_eq!(FaultMechanism::decode_words(99, 0), None);
    }

    #[test]
    fn permanent_spec_rejects_invalid_rates() {
        let p = protected();
        assert!(analyze_spec(&ClrChainSpec::permanent_aging(p, -1.0)).is_err());
        assert!(analyze_spec(&ClrChainSpec::permanent_aging(p, f64::NAN)).is_err());
        assert!(analyze_spec(&ClrChainSpec::permanent_aging(p, f64::INFINITY)).is_err());
    }

    #[test]
    fn permanent_robust_ladder_degrades_cleanly() {
        let p = ClrChainParams {
            intervals: 2,
            t_chk: 12.0e-6,
            p_chk_err: 1.0e-4,
            ..protected()
        };
        let spec = ClrChainSpec::permanent_aging(p, 40.0);
        let exact = analyze_robust_spec(&spec).unwrap();
        assert!(!exact.degraded && !exact.retried);
        let degraded =
            analyze_robust_chaos_spec(&spec, &SolverFaultPlan::new(1, 1_000_000, 1_000_000))
                .unwrap();
        assert!(degraded.degraded && degraded.retried);
        let rel = (degraded.reliability.avg_exec_time - exact.reliability.avg_exec_time).abs()
            / exact.reliability.avg_exec_time;
        assert!(rel < 1e-2, "permanent fallback stays close: {rel}");
        // The fallback keeps the mechanism: it must sit above the
        // transient-only answer for the same parameters.
        let transient = analyze_robust(&p).unwrap();
        assert!(
            degraded.reliability.error_prob > transient.reliability.error_prob,
            "degraded permanent analysis must not silently drop the mechanism"
        );
    }
}

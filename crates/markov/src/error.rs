use clre_num::NumError;
use std::error::Error;
use std::fmt;

/// Error type for Markov chain construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarkovError {
    /// A transition probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Source state index.
        from: usize,
        /// Destination state index.
        to: usize,
        /// The offending value.
        value: f64,
    },
    /// A transient state's outgoing probabilities do not sum to 1.
    RowSumNotOne {
        /// The offending state index.
        state: usize,
        /// The actual row sum.
        sum: f64,
    },
    /// The chain has no absorbing state, so absorption analysis is
    /// undefined.
    NoAbsorbingState,
    /// The requested start state is absorbing; nothing to analyze.
    StartIsAbsorbing {
        /// The offending state index.
        state: usize,
    },
    /// A state index was out of range.
    StateOutOfRange {
        /// The offending index.
        state: usize,
        /// Number of states in the chain.
        count: usize,
    },
    /// Some transient state cannot reach any absorbing state, which makes
    /// `I − Q` singular.
    NotAbsorbing,
    /// A residence time was negative or not finite.
    InvalidResidence {
        /// The offending state index.
        state: usize,
        /// The offending value.
        value: f64,
    },
    /// An underlying numeric failure (kept for completeness; reachable
    /// only through pathological floating-point inputs).
    Numeric(NumError),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidProbability { from, to, value } => {
                write!(f, "invalid probability {value} on transition {from}->{to}")
            }
            MarkovError::RowSumNotOne { state, sum } => {
                write!(
                    f,
                    "outgoing probabilities of state {state} sum to {sum}, expected 1"
                )
            }
            MarkovError::NoAbsorbingState => write!(f, "chain has no absorbing state"),
            MarkovError::StartIsAbsorbing { state } => {
                write!(f, "start state {state} is absorbing")
            }
            MarkovError::StateOutOfRange { state, count } => {
                write!(f, "state {state} out of range (chain has {count} states)")
            }
            MarkovError::NotAbsorbing => {
                write!(f, "some transient state cannot reach an absorbing state")
            }
            MarkovError::InvalidResidence { state, value } => {
                write!(f, "invalid residence time {value} for state {state}")
            }
            MarkovError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl Error for MarkovError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarkovError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for MarkovError {
    fn from(e: NumError) -> Self {
        // Singular (I - Q) means some transient state never reaches
        // absorption; surface that as the domain-specific error.
        match e {
            NumError::Singular { .. } => MarkovError::NotAbsorbing,
            other => MarkovError::Numeric(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            MarkovError::InvalidProbability {
                from: 0,
                to: 1,
                value: 1.5,
            },
            MarkovError::RowSumNotOne { state: 2, sum: 0.9 },
            MarkovError::NoAbsorbingState,
            MarkovError::StartIsAbsorbing { state: 1 },
            MarkovError::StateOutOfRange { state: 9, count: 3 },
            MarkovError::NotAbsorbing,
            MarkovError::InvalidResidence {
                state: 0,
                value: -1.0,
            },
            MarkovError::Numeric(NumError::RaggedRows),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn singular_maps_to_not_absorbing() {
        let e: MarkovError = NumError::Singular { pivot: 0 }.into();
        assert_eq!(e, MarkovError::NotAbsorbing);
        let e2: MarkovError = NumError::RaggedRows.into();
        assert!(matches!(e2, MarkovError::Numeric(_)));
    }

    #[test]
    fn source_chains_to_num_error() {
        let e = MarkovError::Numeric(NumError::RaggedRows);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&MarkovError::NoAbsorbingState).is_none());
    }
}

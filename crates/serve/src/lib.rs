//! `clre-serve` — campaign-as-a-service: a resident multi-tenant DSE
//! server with a shared warm cache and live trace streaming.
//!
//! Everything below is `std`-only. Clients speak the length-prefixed
//! text protocol [`wire`] (`clre-wire v1`) over TCP: they submit
//! serialized [`CampaignPlan`]s with a workload, budget and seed; the
//! [`server`] admits them under per-tenant quotas, runs them over one
//! shared worker budget (fair round-robin across campaigns at
//! generation granularity via `clre_exec::FairGate`), and streams each
//! generation's `trace-v1` line back the moment it is finalized.
//!
//! Cross-tenant warm-start: every campaign on the same platform shares
//! one content-addressed `EvalCache` whose L1 task-analysis level is
//! keyed purely by chain-parameter bits — tenant A's Markov solves
//! answer tenant B's lookups, and the persisted sidecar keeps the cache
//! warm across server restarts.
//!
//! Determinism contract: a campaign run through the server yields a
//! front digest ([`server::front_digest`]) bit-identical to the same
//! plan run in-process, at any worker count. Shutdown (`SIGTERM` or a
//! `shutdown` request) checkpoints every in-flight campaign; a
//! restarted server on the same root resumes them bit-identically.
//!
//! [`CampaignPlan`]: clre::CampaignPlan
//!
//! # Examples
//!
//! ```
//! use clre::methodology::StageBudget;
//! use clre::CampaignPlan;
//! use clre_serve::client::{Event, ServeClient, Submission};
//! use clre_serve::server::{ServeConfig, Server};
//! use clre_serve::wire::{AppSpec, SubmitRequest};
//!
//! let root = std::env::temp_dir().join("clre-serve-doc");
//! let server = Server::bind("127.0.0.1:0", ServeConfig::new(&root)).unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! let stop = server.stop_flag();
//! let running = std::thread::spawn(move || server.run());
//!
//! let mut client = ServeClient::connect(&addr).unwrap();
//! let submission = client
//!     .submit(&SubmitRequest {
//!         tenant: "docs".into(),
//!         app: AppSpec::Synthetic { tasks: 8, seed: 3 },
//!         budget: StageBudget::new(8, 2).with_seed(5),
//!         plan: CampaignPlan::fc(),
//!         scenario: clre::Scenario::Transient,
//!     })
//!     .unwrap();
//! assert!(matches!(submission, Submission::Accepted { .. }));
//! let (traces, terminal) = client.drain().unwrap();
//! assert!(!traces.is_empty(), "one live trace line per generation");
//! assert!(matches!(terminal, Event::Done(_)));
//!
//! stop.store(true, std::sync::atomic::Ordering::SeqCst);
//! running.join().unwrap();
//! # let _ = std::fs::remove_dir_all(&root);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod session;
pub mod wire;

pub use client::{Event, ServeClient, Submission};
pub use server::{front_digest, install_sigterm_handler, ServeConfig, Server};
pub use session::{Admission, CampaignOutcome, Registry, TraceLog};
pub use wire::{AppSpec, DoneSummary, SubmitRequest, WIRE_VERSION};

//! The resident campaign server.
//!
//! One [`Server`] owns: a TCP listener speaking `clre-wire v1`, the
//! campaign [`Registry`], one [`FairGate`] arbitrating every campaign's
//! evaluation batches over the host's worker budget, and one shared
//! [`EvalCache`] per platform label (persisted to a sidecar under the
//! server root, so restarts stay warm and unrelated tenants warm-start
//! each other through the content-addressed L1 task-analysis level).
//!
//! Lifecycle invariants:
//!
//! * **Admission** — a submission passes the per-tenant quota and the
//!   global concurrency ceiling or is rejected before any work starts.
//! * **Determinism** — a campaign run through the server produces a
//!   front bit-identical to the same plan run in-process: the gate only
//!   schedules wall-clock, the pool merge is order-fixed, and the cache
//!   is content-addressed.
//! * **Graceful shutdown** — `SIGTERM` or a `shutdown` request raises
//!   one stop flag; every in-flight campaign checkpoints at its next
//!   generation boundary through the supervisor machinery and is
//!   *parked*. A restarted server on the same root resumes every parked
//!   campaign bit-identically, replays persisted trace history, and
//!   reports completed campaigns from their `done.txt`.
//! * **Client independence** — a dead client costs nothing: campaigns
//!   and their trace history are owned by the registry, and `attach`
//!   resumes streaming from any line index.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use clre::cache::{EvalCache, Fnv};
use clre::methodology::{ClrEarly, FrontResult};
use clre::remote::BackendChoice;
use clre::resilience::{RunOutcome, RunSupervisor, SupervisorConfig};
use clre::tdse::TdseConfig;
use clre_exec::{ExecPool, Executor, FairGate, RunTelemetry};
use clre_model::{Platform, TaskGraph};

use crate::session::{
    format_cache_stats, Admission, CampaignEntry, CampaignOutcome, LogWriter, Registry, TraceLog,
};
use crate::wire::{read_frame, write_frame, AppSpec, DoneSummary, SubmitRequest, WIRE_VERSION};

/// How a [`Server`] is provisioned.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// State directory: per-tenant campaign dirs, cache sidecars.
    pub root: PathBuf,
    /// Worker threads per evaluation batch (the host's worker budget —
    /// the fair gate runs one batch at a time across all campaigns).
    pub workers: usize,
    /// Admission policy.
    pub admission: Admission,
    /// In-memory trace-log ring per campaign, in lines (0 = unbounded).
    /// Older lines stay on disk in `trace.txt` and `attach from=n`
    /// replays them from there, so the cap bounds resident memory
    /// without truncating history.
    pub trace_ring: usize,
    /// Entry ceiling per shared [`EvalCache`] (0 = unbounded); beyond
    /// it, least-recently-used entries are evicted and counted in the
    /// `stats` eviction telemetry.
    pub cache_ceiling: usize,
    /// Where campaign evaluation batches run. The choice never changes
    /// fronts (the determinism invariant above) — only where the work
    /// happens.
    pub backend: BackendChoice,
}

impl ServeConfig {
    /// Defaults: serial evaluation, 8 concurrent campaigns, 4 per
    /// tenant, a 4096-line trace ring, unbounded caches.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServeConfig {
            root: root.into(),
            workers: 1,
            admission: Admission {
                max_active: 8,
                max_per_tenant: 4,
            },
            trace_ring: 4096,
            cache_ceiling: 0,
            backend: BackendChoice::InProcess,
        }
    }

    /// Sets the per-batch worker count (builder style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the global concurrent-campaign ceiling (builder style).
    #[must_use]
    pub fn with_max_active(mut self, max_active: usize) -> Self {
        self.admission.max_active = max_active;
        self
    }

    /// Sets the per-tenant concurrent-campaign quota (builder style).
    #[must_use]
    pub fn with_tenant_quota(mut self, max_per_tenant: usize) -> Self {
        self.admission.max_per_tenant = max_per_tenant;
        self
    }

    /// Sets the in-memory trace-ring cap in lines, 0 for unbounded
    /// (builder style).
    #[must_use]
    pub fn with_trace_ring(mut self, lines: usize) -> Self {
        self.trace_ring = lines;
        self
    }

    /// Sets the shared-cache entry ceiling, 0 for unbounded (builder
    /// style).
    #[must_use]
    pub fn with_cache_ceiling(mut self, entries: usize) -> Self {
        self.cache_ceiling = entries;
        self
    }

    /// Sets the evaluation backend (builder style).
    #[must_use]
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }
}

/// FNV-1a digest of a front's objective matrix, point order preserved —
/// the wire protocol's determinism fingerprint (identical to the
/// chaosbench digest, so digests compare across tools).
pub fn front_digest(front: &FrontResult) -> u64 {
    let mut fnv = Fnv::new();
    for objectives in front.objectives() {
        for &x in &objectives {
            fnv.write_f64(x);
        }
    }
    fnv.finish()
}

/// Builds the platform/graph pair an [`AppSpec`] names.
///
/// # Errors
///
/// A human-readable description of the model-construction failure.
pub fn build_app(app: &AppSpec) -> Result<(Platform, TaskGraph), String> {
    app.build()
        .map_err(|e| format!("{} app: {e}", app.platform_label()))
}

struct Shared {
    config: ServeConfig,
    registry: Registry,
    gate: Arc<FairGate>,
    caches: Mutex<HashMap<String, Arc<EvalCache>>>,
    stop: Arc<AtomicBool>,
    seq: AtomicU64,
    campaign_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Connections currently tailing a trace log. Shutdown waits for
    /// these to flush their terminal (`parked`) events before the
    /// process may exit — otherwise a streaming client racing process
    /// death sees a torn frame instead of the park notice.
    streamers: AtomicU64,
}

impl Shared {
    /// The shared cache of one platform label, created (and bound to its
    /// persistent sidecar under the root) on first use.
    fn cache_for(&self, app: &AppSpec) -> Arc<EvalCache> {
        let label = app.platform_label();
        let mut caches = self.caches.lock().expect("cache table poisoned");
        Arc::clone(caches.entry(label.to_owned()).or_insert_with(|| {
            let cache = EvalCache::shared();
            cache.set_entry_ceiling(self.config.cache_ceiling);
            let sidecar = self.config.root.join(format!("cache-{label}.cache"));
            // A failed bind degrades to a cold in-memory cache — the
            // server stays up, only warm-start is lost.
            let _ = cache.bind_sidecar(&sidecar);
            cache
        }))
    }

    fn next_id(&self) -> String {
        format!("c{}", self.seq.fetch_add(1, Ordering::SeqCst))
    }
}

/// The resident multi-tenant campaign server. See the
/// [module docs](self) for the lifecycle invariants.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener, recovers campaign state from the root
    /// directory (resuming every parked campaign), and returns the
    /// not-yet-accepting server — call [`Server::run`].
    ///
    /// # Errors
    ///
    /// Socket and root-directory I/O failures.
    pub fn bind(addr: &str, config: ServeConfig) -> io::Result<Server> {
        fs::create_dir_all(&config.root)?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            config,
            registry: Registry::new(),
            gate: FairGate::shared(),
            caches: Mutex::new(HashMap::new()),
            stop: Arc::new(AtomicBool::new(false)),
            seq: AtomicU64::new(1),
            campaign_threads: Mutex::new(Vec::new()),
            streamers: AtomicU64::new(0),
        });
        recover_from_root(&shared);
        shared
            .seq
            .store(shared.registry.max_sequence() + 1, Ordering::SeqCst);
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    ///
    /// # Errors
    ///
    /// As [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shutdown flag: storing `true` (from any thread) parks every
    /// in-flight campaign and makes [`Server::run`] return.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.stop)
    }

    /// Serves until shutdown (a `shutdown` request, the
    /// [`Server::stop_flag`], or an installed `SIGTERM` hook), then
    /// joins every campaign thread — by which point each in-flight
    /// campaign has checkpointed and parked.
    pub fn run(&self) {
        loop {
            if sigterm_received() {
                self.shared.stop.store(true, Ordering::SeqCst);
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    // Handlers are detached: they end with their client
                    // (or stall harmlessly on a dead one); campaigns
                    // outlive them by design.
                    std::thread::spawn(move || handle_connection(stream, &shared));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        let threads = std::mem::take(
            &mut *self
                .shared
                .campaign_threads
                .lock()
                .expect("campaign threads poisoned"),
        );
        for handle in threads {
            let _ = handle.join();
        }
        // Every campaign has parked and finished its log; give the
        // streaming handlers a bounded window to forward the terminal
        // events before the process exits underneath them.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.shared.streamers.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Registers campaigns found under the root: completed ones are sealed
/// from their `done.txt`, unfinished ones are resumed immediately.
fn recover_from_root(shared: &Arc<Shared>) {
    let Ok(tenants) = fs::read_dir(&shared.config.root) else {
        return;
    };
    for tenant in tenants.flatten() {
        if !tenant.path().is_dir() {
            continue;
        }
        let Ok(campaigns) = fs::read_dir(tenant.path()) else {
            continue;
        };
        for dir in campaigns.flatten() {
            let dir = dir.path();
            let Ok(meta) = fs::read_to_string(dir.join("meta.txt")) else {
                continue;
            };
            let Ok(request) = SubmitRequest::parse(meta.trim()) else {
                continue;
            };
            let Some(id) = dir.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let log = Arc::new(TraceLog::persisted_with_ring(
                dir.join("trace.txt"),
                shared.config.trace_ring,
            ));
            let entry = Arc::new(CampaignEntry {
                id: id.to_owned(),
                request,
                log,
            });
            let done = fs::read_to_string(dir.join("done.txt"))
                .ok()
                .and_then(|text| DoneSummary::parse(text.trim()).ok());
            shared.registry.insert(Arc::clone(&entry));
            match done {
                Some(summary) => entry.log.finish(CampaignOutcome::Done(summary)),
                None => spawn_campaign(shared, entry, true),
            }
        }
    }
}

/// Starts (or resumes) one campaign on its own thread.
fn spawn_campaign(shared: &Arc<Shared>, entry: Arc<CampaignEntry>, resume: bool) {
    entry.log.reopen();
    let handle = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || run_campaign_thread(&shared, &entry, resume))
    };
    shared
        .campaign_threads
        .lock()
        .expect("campaign threads poisoned")
        .push(handle);
}

fn run_campaign_thread(shared: &Arc<Shared>, entry: &Arc<CampaignEntry>, resume: bool) {
    let ticket = shared.gate.register();
    let outcome = drive_campaign(shared, entry, resume, ticket);
    shared.gate.deregister(ticket);
    if let CampaignOutcome::Done(summary) = &outcome {
        let dir = entry.dir(&shared.config.root);
        let _ = fs::write(dir.join("done.txt"), format!("{}\n", summary.encode()));
    }
    entry.log.finish(outcome);
}

fn drive_campaign(
    shared: &Arc<Shared>,
    entry: &Arc<CampaignEntry>,
    resume: bool,
    ticket: u64,
) -> CampaignOutcome {
    let request = &entry.request;
    let (platform, graph) = match build_app(&request.app) {
        Ok(pair) => pair,
        Err(e) => return CampaignOutcome::Failed(e),
    };
    let cache = shared.cache_for(&request.app);
    let sink = RunTelemetry::sink();
    sink.lock()
        .expect("telemetry sink poisoned")
        .stream_to(Box::new(LogWriter::new(Arc::clone(&entry.log))));
    let backend = match shared.config.backend.build(shared.config.workers) {
        Ok(backend) => backend,
        Err(e) => return CampaignOutcome::Failed(format!("backend: {e}")),
    };
    let mut exec = Executor::new(ExecPool::new(shared.config.workers))
        .with_label(&entry.id)
        .with_telemetry(sink)
        .with_gate(Arc::clone(&shared.gate), ticket);
    if let Some(backend) = backend {
        exec = exec.with_eval_backend(backend);
    }
    // The scenario picks the fault mechanism, CLR catalog and objective
    // set; the shared cache is attached first so scenario-distinct
    // chain digests land in the same warm sidecar without colliding.
    let tdse = match request
        .scenario
        .apply_to(TdseConfig::default().with_eval_cache(Arc::clone(&cache)))
    {
        Ok(tdse) => tdse,
        Err(e) => return CampaignOutcome::Failed(format!("scenario: {e}")),
    };
    let dse = match ClrEarly::with_tdse_config(&graph, &platform, tdse) {
        Ok(dse) => dse
            .with_objectives(request.scenario.system_objectives())
            .with_executor(exec)
            .with_cache(cache)
            // Always attached: the remote context is what lets a
            // non-in-process backend reconstruct the stage problem;
            // without a backend the dispatch layer never consults it.
            .with_remote(request.app.clone(), request.scenario),
        Err(e) => return CampaignOutcome::Failed(format!("task-level DSE: {e}")),
    };
    let dir = entry.dir(&shared.config.root);
    let checkpoint = dir.join("run.ckpt");
    let supervisor =
        RunSupervisor::new(SupervisorConfig::new(&checkpoint).with_keep_checkpoints(2))
            .with_interrupt_flag(Arc::clone(&shared.stop));
    let outcome = if resume && checkpoint.exists() {
        dse.resume(&request.plan, &request.budget, &supervisor)
    } else {
        dse.run_supervised(&request.plan, &request.budget, &supervisor)
    };
    match outcome {
        Ok(RunOutcome::Complete(front)) => CampaignOutcome::Done(DoneSummary {
            digest: front_digest(&front),
            points: front.front().len(),
            evaluations: front.evaluations,
        }),
        Ok(RunOutcome::Interrupted { generation, .. }) => CampaignOutcome::Parked { generation },
        Err(e) => CampaignOutcome::Failed(format!("campaign: {e}")),
    }
}

/// One client connection: handshake, then a request loop. Streaming
/// requests (`submit`, `attach`) tail the campaign's trace log until
/// its terminal event, then return to the loop.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let result = serve_connection(&mut stream, shared);
    // A dead client is routine (its campaigns are parked, not lost);
    // nothing to do beyond dropping the socket.
    drop(result);
}

fn serve_connection(stream: &mut TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    match read_frame(stream)? {
        Some(hello) if hello == format!("hello {WIRE_VERSION}") => {
            write_frame(stream, &format!("ok {WIRE_VERSION}"))?;
        }
        Some(other) => {
            write_frame(stream, &format!("error unsupported handshake {other:?}"))?;
            return Ok(());
        }
        None => return Ok(()),
    }
    while let Some(line) = read_frame(stream)? {
        let verb = line.split_whitespace().next().unwrap_or_default();
        match verb {
            "ping" => write_frame(stream, "pong")?,
            "stats" => write_frame(stream, &stats_line(shared))?,
            "shutdown" => {
                write_frame(stream, "bye")?;
                shared.stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
            "submit" => match SubmitRequest::parse(&line) {
                Ok(request) => handle_submit(stream, shared, request)?,
                Err(e) => write_frame(stream, &format!("rejected reason=malformed detail={e}"))?,
            },
            "attach" => handle_attach(stream, shared, &line)?,
            _ => write_frame(stream, &format!("error unknown request {verb:?}"))?,
        }
    }
    Ok(())
}

fn handle_submit(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: SubmitRequest,
) -> io::Result<()> {
    if shared.stop.load(Ordering::SeqCst) {
        return write_frame(stream, "rejected reason=shutting-down");
    }
    let (total, of_tenant) = shared.registry.active_counts(&request.tenant);
    if let Err(reason) = shared.config.admission.admit(total, of_tenant) {
        return write_frame(stream, &format!("rejected reason={reason}"));
    }
    let id = shared.next_id();
    let dir = shared.config.root.join(&request.tenant).join(&id);
    if let Err(e) = fs::create_dir_all(&dir)
        .and_then(|()| fs::write(dir.join("meta.txt"), format!("{}\n", request.encode())))
    {
        return write_frame(stream, &format!("rejected reason=io detail={e}"));
    }
    let entry = Arc::new(CampaignEntry {
        id: id.clone(),
        request,
        log: Arc::new(TraceLog::persisted_with_ring(
            dir.join("trace.txt"),
            shared.config.trace_ring,
        )),
    });
    shared.registry.insert(Arc::clone(&entry));
    spawn_campaign(shared, Arc::clone(&entry), false);
    write_frame(stream, &format!("accepted id={id}"))?;
    stream_log(stream, shared, &entry, 0)
}

fn handle_attach(stream: &mut TcpStream, shared: &Arc<Shared>, line: &str) -> io::Result<()> {
    let mut tenant = None;
    let mut id = None;
    let mut from = 0usize;
    for tok in line.split_whitespace().skip(1) {
        match tok.split_once('=') {
            Some(("tenant", v)) => tenant = Some(v),
            Some(("id", v)) => id = Some(v),
            Some(("from", v)) => from = v.parse().unwrap_or(0),
            _ => return write_frame(stream, &format!("error malformed attach token {tok:?}")),
        }
    }
    let (Some(tenant), Some(id)) = (tenant, id) else {
        return write_frame(stream, "error attach needs tenant= and id=");
    };
    let Some(entry) = shared.registry.get(tenant, id) else {
        return write_frame(stream, &format!("rejected reason=unknown-campaign id={id}"));
    };
    write_frame(
        stream,
        &format!("attached id={} lines={}", entry.id, entry.log.len()),
    )?;
    stream_log(stream, shared, &entry, from)
}

/// Tails a campaign's trace log from line `from`, forwarding each line
/// as a `trace` event the moment it lands, then the terminal event.
/// Registers itself in [`Shared::streamers`] for the whole tail so
/// shutdown can wait for the terminal event to flush.
fn stream_log(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    entry: &Arc<CampaignEntry>,
    from: usize,
) -> io::Result<()> {
    struct StreamerGuard<'a>(&'a AtomicU64);
    impl Drop for StreamerGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }
    shared.streamers.fetch_add(1, Ordering::SeqCst);
    let _guard = StreamerGuard(&shared.streamers);
    let mut next = from;
    loop {
        let (lines, outcome) = entry.log.wait_from(next, Duration::from_millis(200));
        for line in &lines {
            write_frame(stream, &format!("trace {line}"))?;
        }
        next += lines.len();
        if let Some(outcome) = outcome {
            let event = match outcome {
                CampaignOutcome::Done(summary) => summary.encode(),
                CampaignOutcome::Parked { generation } => {
                    format!(
                        "parked id={} generation={generation} lines={next}",
                        entry.id
                    )
                }
                CampaignOutcome::Failed(e) => {
                    format!("error campaign {} failed: {e}", entry.id)
                }
            };
            return write_frame(stream, &event);
        }
    }
}

fn stats_line(shared: &Arc<Shared>) -> String {
    let (active, done, parked, failed) = shared.registry.outcome_counts();
    let tenants = shared.registry.tenant_count();
    let caches = shared.caches.lock().expect("cache table poisoned");
    let counts: HashMap<String, (u64, u64, u64, u64, u64, u64)> = caches
        .iter()
        .map(|(label, cache)| {
            let a = cache.analysis_counts();
            let f = cache.fitness_counts();
            (
                label.clone(),
                (a.hits, a.misses, a.evictions, f.hits, f.misses, f.evictions),
            )
        })
        .collect();
    format!(
        "stats active={active} done={done} parked={parked} failed={failed} tenants={tenants}{}",
        format_cache_stats(&counts)
    )
}

// --- SIGTERM ---------------------------------------------------------

/// Set by the `SIGTERM` handler; polled by [`Server::run`]'s accept
/// loop. A process-wide static because signal handlers cannot carry
/// state.
static TERM: AtomicBool = AtomicBool::new(false);

/// Whether a `SIGTERM` has been received since
/// [`install_sigterm_handler`] was installed.
pub fn sigterm_received() -> bool {
    TERM.load(Ordering::SeqCst)
}

/// Installs a `SIGTERM` handler that requests graceful shutdown: the
/// accept loop sees it, raises the stop flag, and every in-flight
/// campaign checkpoints and parks. Unix-only (elsewhere this is a
/// no-op); std itself links libc on these targets, so the one-line
/// `signal(2)` binding introduces no new dependency.
#[cfg(unix)]
#[allow(unsafe_code)]
pub fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_sig: i32) {
        // Atomic store: async-signal-safe.
        TERM.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

/// Non-Unix stub: no signal to hook; `shutdown` requests and the stop
/// flag still work.
#[cfg(not(unix))]
pub fn install_sigterm_handler() {}

#[cfg(test)]
mod tests {
    use super::*;
    use clre::methodology::StageBudget;
    use clre::CampaignPlan;

    #[test]
    fn front_digest_matches_objective_bits() {
        // The digest must be a pure function of the objective bits:
        // recompute it by hand for a tiny in-process run.
        let (platform, graph) = build_app(&AppSpec::Synthetic { tasks: 8, seed: 3 }).unwrap();
        let dse = ClrEarly::new(&graph, &platform).unwrap();
        let front = dse
            .run(&CampaignPlan::fc(), &StageBudget::new(8, 2).with_seed(5))
            .unwrap();
        let mut fnv = Fnv::new();
        for objectives in front.objectives() {
            for &x in &objectives {
                fnv.write_f64(x);
            }
        }
        assert_eq!(front_digest(&front), fnv.finish());
    }

    #[test]
    fn serve_config_builders_clamp_and_set() {
        let config = ServeConfig::new("/tmp/x")
            .with_workers(0)
            .with_max_active(2)
            .with_tenant_quota(1);
        assert_eq!(config.workers, 1, "worker floor");
        assert_eq!(config.admission.max_active, 2);
        assert_eq!(config.admission.max_per_tenant, 1);
    }
}

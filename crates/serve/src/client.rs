//! Client side of `clre-wire v1`: connect, submit, tail events.

use std::io;
use std::net::TcpStream;

use crate::wire::{read_frame, write_frame, DoneSummary, SubmitRequest, WIRE_VERSION};

/// One event frame received while tailing a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A live `trace-v1` telemetry line (one per generation batch).
    Trace(String),
    /// The campaign completed with this summary.
    Done(DoneSummary),
    /// The campaign was parked by a server shutdown; reattach after the
    /// server restarts (`lines` is where streaming left off).
    Parked {
        /// Campaign id to reattach to.
        id: String,
        /// Generations the interrupted stage had completed.
        generation: usize,
        /// Trace lines emitted so far — the `from` for the reattach.
        lines: usize,
    },
    /// The server reported an error for this campaign.
    Error(String),
}

/// Outcome of a submission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// Admitted; trace events follow on this connection.
    Accepted {
        /// The server-assigned campaign id.
        id: String,
    },
    /// Refused by admission control (or a malformed request).
    Rejected {
        /// The `reason=` token (`tenant-quota`, `server-busy`, …).
        reason: String,
        /// Everything after the reason token — the server's full
        /// diagnosis, e.g. the typed scenario/plan parse error for a
        /// malformed request. Empty when the reason token says it all.
        detail: String,
    },
}

/// A connected `clre-wire v1` client.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects and performs the version handshake.
    ///
    /// # Errors
    ///
    /// Connection failures; a version mismatch is
    /// [`io::ErrorKind::InvalidData`].
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &format!("hello {WIRE_VERSION}"))?;
        match read_frame(&mut stream)? {
            Some(ok) if ok == format!("ok {WIRE_VERSION}") => Ok(ServeClient { stream }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("handshake failed: {other:?}"),
            )),
        }
    }

    /// Submits a campaign. On acceptance the connection starts
    /// streaming — drain it with [`ServeClient::next_event`].
    ///
    /// # Errors
    ///
    /// I/O failures; protocol violations are
    /// [`io::ErrorKind::InvalidData`].
    pub fn submit(&mut self, request: &SubmitRequest) -> io::Result<Submission> {
        write_frame(&mut self.stream, &request.encode())?;
        let line = self.expect_frame()?;
        if let Some(id) = line.strip_prefix("accepted id=") {
            return Ok(Submission::Accepted { id: id.to_owned() });
        }
        if let Some(rest) = line.strip_prefix("rejected reason=") {
            // The reason is one machine-readable token; everything after
            // it is the human-readable diagnosis and must survive intact
            // (a scenario parse error is worthless cut at the first
            // space).
            let (reason, detail) = match rest.split_once(char::is_whitespace) {
                Some((reason, detail)) => {
                    (reason, detail.strip_prefix("detail=").unwrap_or(detail))
                }
                None => (rest, ""),
            };
            return Ok(Submission::Rejected {
                reason: reason.to_owned(),
                detail: detail.trim().to_owned(),
            });
        }
        Err(bad_frame(&line))
    }

    /// Reattaches to a campaign, streaming from line index `from`.
    /// Returns the server-reported line count at attach time.
    ///
    /// # Errors
    ///
    /// I/O failures; an unknown campaign is [`io::ErrorKind::NotFound`].
    pub fn attach(&mut self, tenant: &str, id: &str, from: usize) -> io::Result<usize> {
        write_frame(
            &mut self.stream,
            &format!("attach tenant={tenant} id={id} from={from}"),
        )?;
        let line = self.expect_frame()?;
        if line.starts_with("attached id=") {
            let lines = line
                .rsplit_once("lines=")
                .and_then(|(_, n)| n.parse().ok())
                .ok_or_else(|| bad_frame(&line))?;
            return Ok(lines);
        }
        if line.starts_with("rejected reason=unknown-campaign") {
            return Err(io::Error::new(io::ErrorKind::NotFound, line));
        }
        Err(bad_frame(&line))
    }

    /// The next streaming event. Call repeatedly after a successful
    /// [`ServeClient::submit`]/[`ServeClient::attach`] until a terminal
    /// event ([`Event::Done`], [`Event::Parked`], [`Event::Error`]).
    ///
    /// # Errors
    ///
    /// I/O failures; unexpected frames are
    /// [`io::ErrorKind::InvalidData`].
    pub fn next_event(&mut self) -> io::Result<Event> {
        let line = self.expect_frame()?;
        if let Some(trace) = line.strip_prefix("trace ") {
            return Ok(Event::Trace(trace.to_owned()));
        }
        if line.starts_with("done ") {
            let summary = DoneSummary::parse(&line).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad done line: {e}"))
            })?;
            return Ok(Event::Done(summary));
        }
        if line.starts_with("parked ") {
            let mut id = String::new();
            let mut generation = 0;
            let mut lines = 0;
            for tok in line.split_whitespace().skip(1) {
                match tok.split_once('=') {
                    Some(("id", v)) => id = v.to_owned(),
                    Some(("generation", v)) => generation = v.parse().unwrap_or(0),
                    Some(("lines", v)) => lines = v.parse().unwrap_or(0),
                    _ => {}
                }
            }
            return Ok(Event::Parked {
                id,
                generation,
                lines,
            });
        }
        if let Some(msg) = line.strip_prefix("error ") {
            return Ok(Event::Error(msg.to_owned()));
        }
        Err(bad_frame(&line))
    }

    /// Drains events until the terminal one, collecting trace lines.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::next_event`].
    pub fn drain(&mut self) -> io::Result<(Vec<String>, Event)> {
        let mut traces = Vec::new();
        loop {
            match self.next_event()? {
                Event::Trace(line) => traces.push(line),
                terminal => return Ok((traces, terminal)),
            }
        }
    }

    /// Round-trip liveness probe.
    ///
    /// # Errors
    ///
    /// I/O failures, or an unexpected response frame.
    pub fn ping(&mut self) -> io::Result<()> {
        write_frame(&mut self.stream, "ping")?;
        match self.expect_frame()?.as_str() {
            "pong" => Ok(()),
            other => Err(bad_frame(other)),
        }
    }

    /// The server's `stats …` line (campaign and shared-cache counters).
    ///
    /// # Errors
    ///
    /// I/O failures, or an unexpected response frame.
    pub fn stats(&mut self) -> io::Result<String> {
        write_frame(&mut self.stream, "stats")?;
        let line = self.expect_frame()?;
        if line.starts_with("stats ") || line == "stats" {
            Ok(line)
        } else {
            Err(bad_frame(&line))
        }
    }

    /// Requests graceful shutdown: the server checkpoints and parks
    /// every in-flight campaign, then exits its accept loop.
    ///
    /// # Errors
    ///
    /// I/O failures, or an unexpected response frame.
    pub fn shutdown(&mut self) -> io::Result<()> {
        write_frame(&mut self.stream, "shutdown")?;
        match self.expect_frame()?.as_str() {
            "bye" => Ok(()),
            other => Err(bad_frame(other)),
        }
    }

    fn expect_frame(&mut self) -> io::Result<String> {
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }
}

fn bad_frame(line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected frame {line:?}"),
    )
}

//! Session bookkeeping: the per-campaign trace log, admission control,
//! and the in-memory campaign registry.
//!
//! The load-bearing object is [`TraceLog`]: the campaign thread appends
//! finalized `trace-v1` lines into it (via [`LogWriter`], attached to
//! the executor's telemetry sink), and any number of connection handlers
//! replay and tail it concurrently. Because the log — not the client
//! connection — owns the stream history, a client that disconnects
//! mid-run costs nothing: the campaign keeps running, the lines keep
//! accumulating (and persisting to `trace.txt`), and a later `attach`
//! resumes from any line index, including across a server restart.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::wire::{DoneSummary, SubmitRequest};

/// Terminal state of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignOutcome {
    /// Ran to completion; the front digest is final.
    Done(DoneSummary),
    /// Interrupted by shutdown at this generation; a checkpoint is on
    /// disk and a restarted server resumes it automatically.
    Parked {
        /// Generations the interrupted stage had completed.
        generation: usize,
    },
    /// The campaign errored; the message is streamed to attached
    /// clients.
    Failed(String),
}

#[derive(Debug, Default)]
struct LogState {
    /// The in-memory tail. With a ring cap, older lines are dropped from
    /// memory (they remain in the persist sidecar) and `start` records
    /// how many were dropped, so global line indices never shift.
    lines: Vec<String>,
    /// Global index of `lines[0]` — lines `0..start` live only on disk.
    start: usize,
    outcome: Option<CampaignOutcome>,
}

/// Append-only trace history of one campaign plus its terminal outcome,
/// safe to tail from many threads. Optionally persists each line to a
/// `trace.txt` sidecar so line indices stay stable across a server
/// restart, and optionally bounds the in-memory tail to a ring of the
/// most recent lines — a long campaign then costs O(ring) memory while
/// `attach from=n` for older indices replays from the sidecar.
#[derive(Debug, Default)]
pub struct TraceLog {
    state: Mutex<LogState>,
    cv: Condvar,
    persist: Option<PathBuf>,
    /// In-memory line cap; 0 means unbounded.
    ring: usize,
}

impl TraceLog {
    /// An in-memory log (tests, short-lived campaigns).
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// A log persisting to `path`, preloaded with any lines already
    /// there — so a resumed campaign appends at the index the parked run
    /// stopped at, and `attach from=n` keeps meaning the same thing
    /// across restarts.
    pub fn persisted(path: PathBuf) -> Self {
        TraceLog::persisted_with_ring(path, 0)
    }

    /// As [`TraceLog::persisted`], but keeping at most `ring` lines in
    /// memory (0 = unbounded). Only the newest `ring` preexisting lines
    /// are loaded; older indices replay from the sidecar on demand.
    pub fn persisted_with_ring(path: PathBuf, ring: usize) -> Self {
        let mut lines: Vec<String> = fs::read_to_string(&path)
            .map(|text| text.lines().map(str::to_owned).collect())
            .unwrap_or_default();
        let mut start = 0;
        if ring > 0 && lines.len() > ring {
            start = lines.len() - ring;
            lines.drain(..start);
        }
        TraceLog {
            state: Mutex::new(LogState {
                lines,
                start,
                outcome: None,
            }),
            cv: Condvar::new(),
            persist: Some(path),
            ring,
        }
    }

    /// Appends one line and wakes every tailing handler.
    pub fn push(&self, line: &str) {
        if let Some(path) = &self.persist {
            let appended = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| writeln!(f, "{line}"));
            // Persistence is best-effort: a full disk degrades restart
            // replay, never live streaming.
            drop(appended);
        }
        let mut s = self.state.lock().expect("trace log poisoned");
        s.lines.push(line.to_owned());
        if self.ring > 0 && s.lines.len() > self.ring {
            let excess = s.lines.len() - self.ring;
            s.lines.drain(..excess);
            s.start += excess;
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Seals the log with its terminal outcome (idempotent: the first
    /// outcome wins) and wakes every tailing handler.
    pub fn finish(&self, outcome: CampaignOutcome) {
        let mut s = self.state.lock().expect("trace log poisoned");
        s.outcome.get_or_insert(outcome);
        drop(s);
        self.cv.notify_all();
    }

    /// Reopens a parked log for the resumed run (clears the outcome so
    /// tailing handlers block for fresh lines again).
    pub fn reopen(&self) {
        let mut s = self.state.lock().expect("trace log poisoned");
        s.outcome = None;
    }

    /// Number of lines emitted so far (including lines evicted from the
    /// in-memory ring — indices are global and never shift).
    pub fn len(&self) -> usize {
        let s = self.state.lock().expect("trace log poisoned");
        s.start + s.lines.len()
    }

    /// Whether no lines have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The terminal outcome, if sealed.
    pub fn outcome(&self) -> Option<CampaignOutcome> {
        self.state
            .lock()
            .expect("trace log poisoned")
            .outcome
            .clone()
    }

    /// Blocks (bounded by `patience`) until there are lines beyond
    /// `from` or the log is sealed; returns the new lines and, once
    /// everything up to the seal has been drained, the outcome. A
    /// `(empty, None)` return is a patience timeout — poll again.
    ///
    /// A `from` older than the in-memory ring replays the evicted range
    /// from the persist sidecar (best-effort: lines whose disk append
    /// failed are skipped, and the reader resumes from the ring).
    pub fn wait_from(
        &self,
        from: usize,
        patience: Duration,
    ) -> (Vec<String>, Option<CampaignOutcome>) {
        let mut s = self.state.lock().expect("trace log poisoned");
        if s.start + s.lines.len() <= from && s.outcome.is_none() {
            let (guard, _timeout) = self
                .cv
                .wait_timeout(s, patience)
                .expect("trace log poisoned");
            s = guard;
        }
        let total = s.start + s.lines.len();
        let mut fresh: Vec<String> = Vec::new();
        if from < s.start {
            if let Some(path) = &self.persist {
                if let Ok(text) = fs::read_to_string(path) {
                    fresh.extend(
                        text.lines()
                            .skip(from)
                            .take(s.start - from)
                            .map(str::to_owned),
                    );
                }
            }
            fresh.extend(s.lines.iter().cloned());
        } else {
            fresh.extend(
                s.lines
                    .get(from - s.start..)
                    .unwrap_or_default()
                    .iter()
                    .cloned(),
            );
        }
        let outcome = if from.max(s.start) + fresh.len() >= total {
            s.outcome.clone()
        } else {
            None
        };
        (fresh, outcome)
    }
}

/// `io::Write` adapter from the telemetry sink's byte stream onto a
/// [`TraceLog`]: buffers until newline, pushes complete lines.
#[derive(Debug)]
pub struct LogWriter {
    log: Arc<TraceLog>,
    pending: Vec<u8>,
}

impl LogWriter {
    /// A writer appending complete lines into `log`.
    pub fn new(log: Arc<TraceLog>) -> Self {
        LogWriter {
            log,
            pending: Vec::new(),
        }
    }
}

impl io::Write for LogWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.pending.extend_from_slice(buf);
        while let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
            let rest = self.pending.split_off(pos + 1);
            let line = std::mem::replace(&mut self.pending, rest);
            self.log
                .push(String::from_utf8_lossy(&line[..line.len() - 1]).as_ref());
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Admission policy: a global concurrency ceiling plus a per-tenant
/// quota, both counted over campaigns that have not reached a terminal
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Campaigns the server will run concurrently across all tenants.
    pub max_active: usize,
    /// Concurrent campaigns allowed per tenant.
    pub max_per_tenant: usize,
}

impl Admission {
    /// Admits or rejects a submission given the current active counts.
    ///
    /// # Errors
    ///
    /// The wire-format rejection reason token.
    pub fn admit(&self, active_total: usize, active_tenant: usize) -> Result<(), &'static str> {
        if active_tenant >= self.max_per_tenant {
            return Err("tenant-quota");
        }
        if active_total >= self.max_active {
            return Err("server-busy");
        }
        Ok(())
    }
}

/// One admitted campaign: identity, the request that created it, and
/// its trace log.
#[derive(Debug)]
pub struct CampaignEntry {
    /// Server-assigned campaign id (`c<seq>`), unique across restarts.
    pub id: String,
    /// The submission.
    pub request: SubmitRequest,
    /// The streaming trace history.
    pub log: Arc<TraceLog>,
}

impl CampaignEntry {
    /// The campaign's state directory under the server root.
    pub fn dir(&self, root: &Path) -> PathBuf {
        root.join(&self.request.tenant).join(&self.id)
    }
}

/// The in-memory campaign table.
#[derive(Debug, Default)]
pub struct Registry {
    campaigns: Mutex<Vec<Arc<CampaignEntry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Inserts an admitted campaign.
    pub fn insert(&self, entry: Arc<CampaignEntry>) {
        self.campaigns
            .lock()
            .expect("registry poisoned")
            .push(entry);
    }

    /// Looks up a campaign by tenant and id.
    pub fn get(&self, tenant: &str, id: &str) -> Option<Arc<CampaignEntry>> {
        self.campaigns
            .lock()
            .expect("registry poisoned")
            .iter()
            .find(|e| e.request.tenant == tenant && e.id == id)
            .cloned()
    }

    /// `(total, of this tenant)` campaigns without a terminal outcome.
    pub fn active_counts(&self, tenant: &str) -> (usize, usize) {
        let campaigns = self.campaigns.lock().expect("registry poisoned");
        let mut total = 0;
        let mut of_tenant = 0;
        for e in campaigns.iter() {
            if e.log.outcome().is_none() {
                total += 1;
                if e.request.tenant == tenant {
                    of_tenant += 1;
                }
            }
        }
        (total, of_tenant)
    }

    /// Per-outcome campaign counts: `(active, done, parked, failed)`.
    pub fn outcome_counts(&self) -> (usize, usize, usize, usize) {
        let campaigns = self.campaigns.lock().expect("registry poisoned");
        let mut counts = (0, 0, 0, 0);
        for e in campaigns.iter() {
            match e.log.outcome() {
                None => counts.0 += 1,
                Some(CampaignOutcome::Done(_)) => counts.1 += 1,
                Some(CampaignOutcome::Parked { .. }) => counts.2 += 1,
                Some(CampaignOutcome::Failed(_)) => counts.3 += 1,
            }
        }
        counts
    }

    /// Distinct tenant count.
    pub fn tenant_count(&self) -> usize {
        let campaigns = self.campaigns.lock().expect("registry poisoned");
        let mut tenants: Vec<&str> = campaigns
            .iter()
            .map(|e| e.request.tenant.as_str())
            .collect();
        tenants.sort_unstable();
        tenants.dedup();
        tenants.len()
    }

    /// The numerically largest `c<seq>` id in the registry, for seeding
    /// the id counter past ids recovered from disk.
    pub fn max_sequence(&self) -> u64 {
        self.campaigns
            .lock()
            .expect("registry poisoned")
            .iter()
            .filter_map(|e| e.id.strip_prefix('c')?.parse().ok())
            .max()
            .unwrap_or(0)
    }
}

/// Snapshot of every shared cache's counters, for the `stats` response.
/// Per label: `(analysis hits, analysis misses, analysis evictions,
/// fitness hits, fitness misses, fitness evictions)` — evictions are
/// nonzero only when the server runs with a cache entry ceiling.
pub fn format_cache_stats(counts: &HashMap<String, (u64, u64, u64, u64, u64, u64)>) -> String {
    let mut labels: Vec<&String> = counts.keys().collect();
    labels.sort();
    labels
        .iter()
        .map(|label| {
            let (ah, am, ae, fh, fm, fe) = counts[label.as_str()];
            format!(
                " cache.{label}.analysis_hits={ah} cache.{label}.analysis_misses={am} \
                 cache.{label}.analysis_evictions={ae} cache.{label}.fitness_hits={fh} \
                 cache.{label}.fitness_misses={fm} cache.{label}.fitness_evictions={fe}"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::AppSpec;
    use clre::methodology::StageBudget;
    use clre::CampaignPlan;

    fn entry(tenant: &str, id: &str) -> Arc<CampaignEntry> {
        Arc::new(CampaignEntry {
            id: id.to_owned(),
            request: SubmitRequest {
                tenant: tenant.to_owned(),
                app: AppSpec::Sobel { seed: 1 },
                budget: StageBudget::new(4, 2),
                plan: CampaignPlan::fc(),
                scenario: clre::Scenario::Transient,
            },
            log: Arc::new(TraceLog::new()),
        })
    }

    #[test]
    fn cache_stats_tokens_are_space_separated_and_numeric() {
        let mut counts = HashMap::new();
        counts.insert("paper".to_owned(), (11u64, 22u64, 5u64, 33u64, 44u64, 6u64));
        counts.insert("sobel".to_owned(), (1u64, 2u64, 0u64, 3u64, 4u64, 0u64));
        let stats = format_cache_stats(&counts);
        // Every token must parse as key=<u64> — a glued token (missing
        // separator) would make its numeric tail unparseable.
        for tok in stats.split_whitespace() {
            let (key, value) = tok.split_once('=').expect("key=value token");
            assert!(key.starts_with("cache."), "unexpected key {key:?}");
            value
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("token {tok:?} has a non-numeric value"));
        }
        for expected in [
            "cache.paper.analysis_hits=11",
            "cache.paper.analysis_misses=22",
            "cache.paper.analysis_evictions=5",
            "cache.paper.fitness_hits=33",
            "cache.paper.fitness_misses=44",
            "cache.paper.fitness_evictions=6",
            "cache.sobel.analysis_hits=1",
        ] {
            assert!(
                stats.split_whitespace().any(|t| t == expected),
                "missing token {expected:?} in {stats:?}"
            );
        }
    }

    #[test]
    fn trace_log_tails_lines_then_outcome() {
        let log = Arc::new(TraceLog::new());
        log.push("trace-v1 a");
        log.push("trace-v1 b");
        let (lines, outcome) = log.wait_from(0, Duration::from_millis(10));
        assert_eq!(lines, vec!["trace-v1 a", "trace-v1 b"]);
        assert_eq!(outcome, None, "not sealed yet");

        let tail = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || log.wait_from(2, Duration::from_secs(5)))
        };
        log.push("trace-v1 c");
        let (lines, _) = tail.join().unwrap();
        assert_eq!(lines, vec!["trace-v1 c"], "woken by push");

        log.finish(CampaignOutcome::Parked { generation: 3 });
        log.finish(CampaignOutcome::Failed("late".into()));
        let (lines, outcome) = log.wait_from(3, Duration::from_millis(10));
        assert!(lines.is_empty());
        assert_eq!(
            outcome,
            Some(CampaignOutcome::Parked { generation: 3 }),
            "first outcome wins"
        );
        // A reader behind on lines does not see the outcome early.
        let (lines, outcome) = log.wait_from(0, Duration::from_millis(10));
        assert_eq!(lines.len(), 3);
        assert!(outcome.is_some(), "drained reader sees the seal");
        let (_, early) = log.wait_from(1, Duration::ZERO);
        assert!(early.is_some(), "lines 1.. drains the rest too");
    }

    #[test]
    fn persisted_log_reloads_lines_across_restart() {
        let dir = std::env::temp_dir().join("clre-serve-session-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        let _ = fs::remove_file(&path);
        {
            let log = TraceLog::persisted(path.clone());
            log.push("gen 0");
            log.push("gen 1");
        }
        let reloaded = TraceLog::persisted(path.clone());
        assert_eq!(reloaded.len(), 2, "restart keeps line indices stable");
        reloaded.push("gen 2");
        let (lines, _) = reloaded.wait_from(1, Duration::ZERO);
        assert_eq!(lines, vec!["gen 1", "gen 2"]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn ring_cap_bounds_memory_and_replays_evicted_lines_from_disk() {
        let dir = std::env::temp_dir().join("clre-serve-session-ring");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.txt");
        let _ = fs::remove_file(&path);
        let log = TraceLog::persisted_with_ring(path.clone(), 3);
        for i in 0..10 {
            log.push(&format!("gen {i}"));
        }
        assert_eq!(log.len(), 10, "indices are global, not ring-relative");
        {
            let s = log.state.lock().unwrap();
            assert_eq!(s.lines.len(), 3, "memory bounded by the ring");
            assert_eq!(s.start, 7);
        }
        // A tail inside the ring serves from memory.
        let (lines, _) = log.wait_from(8, Duration::ZERO);
        assert_eq!(lines, vec!["gen 8", "gen 9"]);
        // A tail older than the ring replays the evicted prefix from the
        // sidecar and continues seamlessly into the ring.
        let (lines, outcome) = log.wait_from(5, Duration::ZERO);
        let expected: Vec<String> = (5..10).map(|i| format!("gen {i}")).collect();
        assert_eq!(lines, expected);
        assert_eq!(outcome, None, "not sealed yet");
        log.finish(CampaignOutcome::Parked { generation: 9 });
        let (lines, outcome) = log.wait_from(0, Duration::ZERO);
        assert_eq!(lines.len(), 10, "full replay from line zero");
        assert!(outcome.is_some(), "drained reader sees the seal");

        // A restart with the same ring keeps indices stable and loads
        // only the newest lines into memory.
        let reloaded = TraceLog::persisted_with_ring(path.clone(), 3);
        assert_eq!(reloaded.len(), 10);
        assert_eq!(reloaded.state.lock().unwrap().lines.len(), 3);
        let (lines, _) = reloaded.wait_from(9, Duration::ZERO);
        assert_eq!(lines, vec!["gen 9"]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn log_writer_splits_byte_stream_into_lines() {
        use std::io::Write as _;
        let log = Arc::new(TraceLog::new());
        let mut w = LogWriter::new(Arc::clone(&log));
        w.write_all(b"trace-v1 part").unwrap();
        assert_eq!(log.len(), 0, "incomplete line buffered");
        w.write_all(b"ial\ntrace-v1 next\ntr").unwrap();
        let (lines, _) = log.wait_from(0, Duration::ZERO);
        assert_eq!(lines, vec!["trace-v1 partial", "trace-v1 next"]);
    }

    #[test]
    fn admission_enforces_quota_then_capacity() {
        let policy = Admission {
            max_active: 3,
            max_per_tenant: 2,
        };
        assert_eq!(policy.admit(0, 0), Ok(()));
        assert_eq!(policy.admit(2, 2), Err("tenant-quota"));
        assert_eq!(policy.admit(3, 1), Err("server-busy"));
        assert_eq!(
            policy.admit(3, 3),
            Err("tenant-quota"),
            "quota outranks capacity in the report"
        );
    }

    #[test]
    fn registry_counts_follow_outcomes() {
        let reg = Registry::new();
        let a = entry("alpha", "c1");
        let b = entry("alpha", "c2");
        let c = entry("beta", "c7");
        reg.insert(Arc::clone(&a));
        reg.insert(Arc::clone(&b));
        reg.insert(Arc::clone(&c));
        assert_eq!(reg.active_counts("alpha"), (3, 2));
        assert_eq!(reg.max_sequence(), 7);
        assert_eq!(reg.tenant_count(), 2);

        b.log.finish(CampaignOutcome::Done(DoneSummary {
            digest: 1,
            points: 1,
            evaluations: 1,
        }));
        c.log.finish(CampaignOutcome::Parked { generation: 2 });
        assert_eq!(reg.active_counts("alpha"), (1, 1));
        assert_eq!(reg.outcome_counts(), (1, 1, 1, 0));
        assert!(reg.get("beta", "c7").is_some());
        assert!(reg.get("beta", "c1").is_none(), "tenant scoped");
    }
}

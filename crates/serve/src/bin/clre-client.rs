//! `clre-client` — command-line client for `clre-server`.
//!
//! ```text
//! clre-client submit --addr A --tenant T --app SPEC --plan PLAN
//!             --population N --generations N --seed N [--quiet]
//! clre-client attach --addr A --tenant T --id ID [--from N] [--quiet]
//! clre-client local  --app SPEC --plan PLAN --population N
//!             --generations N --seed N [--workers N]
//!             [--backend inprocess|threads|subprocess[:PATH]]
//! clre-client ping|stats|shutdown --addr A
//! ```
//!
//! `submit` streams trace lines to stdout and ends with the `done` (or
//! `parked`) line. `local` runs the identical campaign in-process and
//! prints the same `done digest=…` line — diffing the two is the
//! determinism check CI runs. APP is `synthetic:<tasks>:<seed>` or
//! `sobel:<seed>`; PLAN is a built-in name (`fc`, `pf`, `proposed`,
//! `agnostic`, `pf-spea2`, `pf-tournament:<k>`, `random-subset:<seed>`)
//! or a raw plan string, optionally suffixed `@<scenario>` to run it
//! under a reliability scenario (`transient`, `lifetime[:hours]`,
//! `chkmodes`, `fpga`) — e.g. `--plan fc@lifetime:40000`. Built-in plan
//! names also take an `/islands<n>` suffix (`proposed/islands4`) for
//! the island-model expansion. `local --backend` selects where
//! evaluation batches run; the printed digest is identical regardless.
//!
//! Exit codes: 0 done, 3 parked (reattach after restart), 4 rejected,
//! 1 error.

use std::process::exit;

use clre::methodology::{ClrEarly, StageBudget};
use clre::remote::BackendChoice;
use clre_exec::{ExecPool, Executor};
use clre_serve::client::{Event, ServeClient, Submission};
use clre_serve::server::{build_app, front_digest};
use clre_serve::wire::{plan_scenario_from_arg, AppSpec, DoneSummary, SubmitRequest};

fn usage() -> ! {
    eprintln!(
        "usage: clre-client submit|attach|local|ping|stats|shutdown [--addr HOST:PORT] \
         [--tenant T] [--app SPEC] [--plan PLAN] [--population N] [--generations N] \
         [--seed N] [--id ID] [--from N] [--workers N] \
         [--backend inprocess|threads|subprocess[:PATH]] [--quiet]"
    );
    exit(2);
}

#[derive(Default)]
struct Args {
    addr: Option<String>,
    tenant: Option<String>,
    app: Option<String>,
    plan: Option<String>,
    population: Option<usize>,
    generations: Option<usize>,
    seed: Option<u64>,
    id: Option<String>,
    from: usize,
    workers: usize,
    backend: BackendChoice,
    quiet: bool,
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else { usage() };
    let mut args = Args {
        workers: 1,
        ..Args::default()
    };
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--tenant" => args.tenant = Some(value("--tenant")),
            "--app" => args.app = Some(value("--app")),
            "--plan" => args.plan = Some(value("--plan")),
            "--population" => args.population = value("--population").parse().ok(),
            "--generations" => args.generations = value("--generations").parse().ok(),
            "--seed" => args.seed = value("--seed").parse().ok(),
            "--id" => args.id = Some(value("--id")),
            "--from" => args.from = value("--from").parse().unwrap_or(0),
            "--workers" => args.workers = value("--workers").parse().unwrap_or(1),
            "--backend" => {
                args.backend = BackendChoice::parse(&value("--backend")).unwrap_or_else(|e| {
                    eprintln!("--backend: {e}");
                    usage()
                });
            }
            "--quiet" => args.quiet = true,
            _ => usage(),
        }
    }
    let code = match command.as_str() {
        "submit" => submit(&args),
        "attach" => attach(&args),
        "local" => local(&args),
        "ping" => simple(&args, |c| c.ping().map(|()| "pong".to_owned())),
        "stats" => simple(&args, ServeClient::stats),
        "shutdown" => simple(&args, |c| c.shutdown().map(|()| "bye".to_owned())),
        _ => usage(),
    };
    exit(code);
}

fn connect(args: &Args) -> ServeClient {
    let Some(addr) = &args.addr else {
        eprintln!("--addr is required");
        usage()
    };
    ServeClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("clre-client: connect {addr}: {e}");
        exit(1);
    })
}

fn request_from(args: &Args) -> SubmitRequest {
    let missing = |what: &str| -> ! {
        eprintln!("--{what} is required");
        usage()
    };
    let app =
        AppSpec::parse(args.app.as_deref().unwrap_or_else(|| missing("app"))).unwrap_or_else(|e| {
            eprintln!("clre-client: {e}");
            exit(2);
        });
    let (plan, scenario) =
        plan_scenario_from_arg(args.plan.as_deref().unwrap_or_else(|| missing("plan")))
            .unwrap_or_else(|e| {
                eprintln!("clre-client: {e}");
                exit(2);
            });
    SubmitRequest {
        tenant: args.tenant.clone().unwrap_or_else(|| "default".to_owned()),
        app,
        budget: StageBudget::new(
            args.population.unwrap_or_else(|| missing("population")),
            args.generations.unwrap_or_else(|| missing("generations")),
        )
        .with_seed(args.seed.unwrap_or_else(|| missing("seed"))),
        plan,
        scenario,
    }
}

fn stream_events(client: &mut ServeClient, quiet: bool) -> i32 {
    loop {
        match client.next_event() {
            Ok(Event::Trace(line)) => {
                if !quiet {
                    println!("{line}");
                }
            }
            Ok(Event::Done(summary)) => {
                println!("{}", summary.encode());
                return 0;
            }
            Ok(Event::Parked {
                id,
                generation,
                lines,
            }) => {
                println!("parked id={id} generation={generation} lines={lines}");
                return 3;
            }
            Ok(Event::Error(msg)) => {
                eprintln!("clre-client: server error: {msg}");
                return 1;
            }
            Err(e) => {
                eprintln!("clre-client: stream: {e}");
                return 1;
            }
        }
    }
}

fn submit(args: &Args) -> i32 {
    let request = request_from(args);
    let mut client = connect(args);
    match client.submit(&request) {
        Ok(Submission::Accepted { id }) => {
            println!("accepted id={id}");
            stream_events(&mut client, args.quiet)
        }
        Ok(Submission::Rejected { reason, detail }) => {
            if detail.is_empty() {
                eprintln!("clre-client: rejected: {reason}");
            } else {
                eprintln!("clre-client: rejected ({reason}): {detail}");
            }
            4
        }
        Err(e) => {
            eprintln!("clre-client: submit: {e}");
            1
        }
    }
}

fn attach(args: &Args) -> i32 {
    let (Some(tenant), Some(id)) = (&args.tenant, &args.id) else {
        eprintln!("--tenant and --id are required");
        usage()
    };
    let mut client = connect(args);
    match client.attach(tenant, id, args.from) {
        Ok(_lines) => stream_events(&mut client, args.quiet),
        Err(e) => {
            eprintln!("clre-client: attach: {e}");
            1
        }
    }
}

/// Runs the identical campaign in-process and prints the same
/// `done digest=…` line the server would send: the two outputs diffing
/// clean IS the determinism contract.
fn local(args: &Args) -> i32 {
    let request = request_from(args);
    let (platform, graph) = match build_app(&request.app) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("clre-client: {e}");
            return 1;
        }
    };
    let backend = match args.backend.build(args.workers) {
        Ok(backend) => backend,
        Err(e) => {
            eprintln!("clre-client: backend: {e}");
            return 1;
        }
    };
    let mut exec = Executor::new(ExecPool::new(args.workers));
    if let Some(backend) = backend {
        exec = exec.with_eval_backend(backend);
    }
    let dse = match ClrEarly::with_scenario(&graph, &platform, &request.scenario) {
        Ok(dse) => dse
            .with_executor(exec)
            .with_remote(request.app.clone(), request.scenario),
        Err(e) => {
            eprintln!("clre-client: task-level DSE: {e}");
            return 1;
        }
    };
    match dse.run(&request.plan, &request.budget) {
        Ok(front) => {
            let summary = DoneSummary {
                digest: front_digest(&front),
                points: front.front().len(),
                evaluations: front.evaluations,
            };
            println!("{}", summary.encode());
            0
        }
        Err(e) => {
            eprintln!("clre-client: campaign: {e}");
            1
        }
    }
}

fn simple(args: &Args, call: impl FnOnce(&mut ServeClient) -> std::io::Result<String>) -> i32 {
    let mut client = connect(args);
    match call(&mut client) {
        Ok(line) => {
            println!("{line}");
            0
        }
        Err(e) => {
            eprintln!("clre-client: {e}");
            1
        }
    }
}

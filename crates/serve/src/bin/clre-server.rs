//! `clre-server` — the resident campaign server binary.
//!
//! ```text
//! clre-server --root DIR [--addr 127.0.0.1:7171] [--workers N]
//!             [--max-active N] [--tenant-quota N]
//!             [--trace-ring LINES] [--cache-ceiling ENTRIES]
//!             [--backend inprocess|threads|subprocess[:PATH]]
//! ```
//!
//! `--trace-ring` bounds each campaign's in-memory trace history (0 =
//! unbounded, default 4096 lines); older lines spill to `trace.txt`
//! and `attach from=n` replays them from there. `--cache-ceiling`
//! bounds each shared evaluation cache (0 = unbounded); beyond it the
//! least-recently-used entries are evicted and reported in `stats`.
//! `--backend` selects where evaluation batches run (default
//! `inprocess`); `subprocess` supervises a pool of `clre-exec-worker`
//! children, located via `$CLRE_EXEC_WORKER`, a sibling of this binary,
//! or the explicit `:PATH` suffix. Fronts are bit-identical across
//! backends.
//!
//! Prints `listening <addr>` once the socket is bound (so scripts using
//! `--addr 127.0.0.1:0` can read the ephemeral port), then serves until
//! `SIGTERM` or a `shutdown` request — both checkpoint and park every
//! in-flight campaign; restarting on the same `--root` resumes them.

use std::process::exit;

use clre::remote::BackendChoice;
use clre_serve::server::{install_sigterm_handler, ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: clre-server --root DIR [--addr HOST:PORT] [--workers N] \
         [--max-active N] [--tenant-quota N] [--trace-ring LINES] \
         [--cache-ceiling ENTRIES] [--backend inprocess|threads|subprocess[:PATH]]"
    );
    exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    let mut addr = "127.0.0.1:7171".to_owned();
    let mut workers = 1;
    let mut max_active = 8;
    let mut tenant_quota = 4;
    let mut trace_ring = 4096;
    let mut cache_ceiling = 0;
    let mut backend = BackendChoice::InProcess;
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--root" => root = Some(value("--root")),
            "--addr" => addr = value("--addr"),
            "--workers" => workers = parse(&value("--workers"), "--workers"),
            "--max-active" => max_active = parse(&value("--max-active"), "--max-active"),
            "--tenant-quota" => tenant_quota = parse(&value("--tenant-quota"), "--tenant-quota"),
            "--trace-ring" => trace_ring = parse(&value("--trace-ring"), "--trace-ring"),
            "--cache-ceiling" => {
                cache_ceiling = parse(&value("--cache-ceiling"), "--cache-ceiling");
            }
            "--backend" => {
                backend = BackendChoice::parse(&value("--backend")).unwrap_or_else(|e| {
                    eprintln!("--backend: {e}");
                    usage()
                });
            }
            _ => usage(),
        }
    }
    let Some(root) = root else { usage() };
    let config = ServeConfig::new(root)
        .with_workers(workers)
        .with_max_active(max_active)
        .with_tenant_quota(tenant_quota)
        .with_trace_ring(trace_ring)
        .with_cache_ceiling(cache_ceiling)
        .with_backend(backend);
    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("clre-server: bind {addr}: {e}");
            exit(1);
        }
    };
    install_sigterm_handler();
    match server.local_addr() {
        Ok(bound) => {
            // Stdout is the contract with wrapper scripts; flush so a
            // piped reader sees the port before the first connection.
            use std::io::Write as _;
            println!("listening {bound}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => eprintln!("clre-server: local_addr: {e}"),
    }
    server.run();
    println!("stopped");
}

fn parse(text: &str, what: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{what}: not a number: {text}");
        usage()
    })
}

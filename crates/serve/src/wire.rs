//! `clre-wire v1` — the server's length-prefixed text protocol.
//!
//! Every frame is a big-endian `u32` byte length followed by that many
//! bytes of UTF-8, one logical line per frame (no trailing newline). The
//! first frame each side sends is the version handshake; after that the
//! client sends request lines and the server answers with response and
//! event lines. All payloads are plain text with space-separated
//! `key=value` tokens, so the protocol can be driven by hand and grepped
//! in captures; everything that must survive a round-trip bit-exactly
//! (seeds, salts) travels as decimal integers, and front digests as
//! fixed-width hex.
//!
//! The campaign-plan grammar is a faithful, whitespace-free projection
//! of [`CampaignPlan`]:
//!
//! ```text
//! plan      := <name> '|' stage (';' stage)*
//! stage     := label ',' algo ',' mode ',' lib ',' salt ',' divisor ',' seed_from
//! algo      := 'nsga2' | 'nsga2:' k | 'spea2'
//! mode      := 'full' | 'pf'
//! lib       := 'main' | 'layer:' index | 'subset:' seed
//! seed_from := '-' | index (':' index)*
//! ```
//!
//! `seed_from` lists every seeding edge in order — `-` for none, a
//! single index for the proposed flow's pf → fc hand-off, and a
//! `:`-joined list for island-model migration stages that merge fronts
//! from several predecessors.
//!
//! A submission additionally carries an optional `scenario=` key — a
//! reliability scenario name (`transient`, `lifetime[:hours]`,
//! `chkmodes`, `fpga`) selecting the fault mechanism, CLR catalog and
//! objective set the campaign runs under; command-line front ends
//! accept the combined `plan@scenario` shorthand via
//! [`plan_scenario_from_arg`]. Unknown scenario axes are rejected with
//! the typed [`clre::DseError::Scenario`] message, never a panic.
//!
//! # Examples
//!
//! ```
//! use clre::CampaignPlan;
//! use clre_serve::wire::{encode_plan, parse_plan};
//!
//! let plan = CampaignPlan::proposed();
//! let text = encode_plan(&plan);
//! assert_eq!(parse_plan(&text).unwrap(), plan);
//! ```

use std::io::{self, Read, Write};

use clre::campaign::{CampaignPlan, LibrarySource, StageAlgorithm, StagePlan};
use clre::encoding::ChoiceMode;
use clre::methodology::{Layer, StageBudget};
use clre::Scenario;

/// The protocol version token exchanged in the handshake.
pub const WIRE_VERSION: &str = "clre-wire v1";

/// Frames larger than this are rejected before allocation: no legal
/// line (trace, plan, stats) comes anywhere near it, so an oversized
/// length prefix means a confused or hostile peer.
pub const MAX_FRAME: u32 = 1 << 20;

/// Writes one line as a length-prefixed frame and flushes, so the peer
/// sees it immediately (live trace streaming depends on this).
///
/// # Errors
///
/// Any underlying I/O failure; `line` longer than [`MAX_FRAME`] is
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, line: &str) -> io::Result<()> {
    let len = u32::try_from(line.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// Truncated frames, invalid UTF-8, and lengths beyond [`MAX_FRAME`]
/// are [`io::ErrorKind::InvalidData`]; otherwise the underlying error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "truncated frame"))?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

pub use clre::apps::AppSpec;

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String> {
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("malformed {what}"))
}

/// One campaign submission: who is asking, what to optimize, with what
/// budget, under which plan and reliability scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Tenant name (whitespace-free); the quota and on-disk namespace.
    pub tenant: String,
    /// The workload.
    pub app: AppSpec,
    /// Population / generations / seed of every stage.
    pub budget: StageBudget,
    /// The stage graph to run.
    pub plan: CampaignPlan,
    /// The reliability scenario: fault mechanism + catalog axes +
    /// objective set the campaign runs under. Omitted on the wire when
    /// [`Scenario::Transient`] (the default), so pre-scenario captures
    /// and `meta.txt` sidecars keep parsing.
    pub scenario: Scenario,
}

impl SubmitRequest {
    /// The `submit …` request line.
    pub fn encode(&self) -> String {
        let scenario = match self.scenario {
            Scenario::Transient => String::new(),
            ref s => format!(" scenario={}", s.name()),
        };
        format!(
            "submit tenant={} app={} population={} generations={} seed={} plan={}{scenario}",
            self.tenant,
            self.app.encode(),
            self.budget.population,
            self.budget.generations,
            self.budget.seed,
            encode_plan(&self.plan),
        )
    }

    /// Parses a `submit …` line (the verb token included).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed token.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut tenant = None;
        let mut app = None;
        let mut population = None;
        let mut generations = None;
        let mut seed = None;
        let mut plan = None;
        let mut scenario = Scenario::Transient;
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("submit") {
            return Err("not a submit line".to_owned());
        }
        for tok in tokens {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("malformed token {tok:?}"))?;
            match key {
                "tenant" => tenant = Some(value.to_owned()),
                "app" => app = Some(AppSpec::parse(value)?),
                "population" => population = Some(parse_num(Some(value), "population")?),
                "generations" => generations = Some(parse_num(Some(value), "generations")?),
                "seed" => seed = Some(parse_num(Some(value), "seed")?),
                "plan" => plan = Some(parse_plan(value)?),
                "scenario" => scenario = Scenario::parse(value).map_err(|e| e.to_string())?,
                _ => return Err(format!("unknown submit key {key:?}")),
            }
        }
        let tenant: String = tenant.ok_or("missing tenant")?;
        if tenant.is_empty()
            || !tenant
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-')
        {
            return Err(format!(
                "tenant {tenant:?} must be non-empty [a-zA-Z0-9-] (it names a directory)"
            ));
        }
        Ok(SubmitRequest {
            tenant,
            app: app.ok_or("missing app")?,
            budget: StageBudget::new(
                population.ok_or("missing population")?,
                generations.ok_or("missing generations")?,
            )
            .with_seed(seed.ok_or("missing seed")?),
            plan: plan.ok_or("missing plan")?,
            scenario,
        })
    }
}

/// Encodes a [`CampaignPlan`] in the whitespace-free plan grammar (see
/// the [module docs](self)).
pub fn encode_plan(plan: &CampaignPlan) -> String {
    let stages: Vec<String> = plan.stages.iter().map(encode_stage).collect();
    format!("{}|{}", plan.name, stages.join(";"))
}

fn encode_stage(stage: &StagePlan) -> String {
    let algo = match stage.algorithm {
        StageAlgorithm::Nsga2 { tournament: None } => "nsga2".to_owned(),
        StageAlgorithm::Nsga2 {
            tournament: Some(k),
        } => format!("nsga2:{k}"),
        StageAlgorithm::Spea2 => "spea2".to_owned(),
    };
    let mode = match stage.mode {
        ChoiceMode::Full => "full",
        ChoiceMode::ParetoFiltered => "pf",
    };
    let lib = match stage.library {
        LibrarySource::Main => "main".to_owned(),
        LibrarySource::SingleLayer(layer) => {
            let index = Layer::ALL
                .iter()
                .position(|&l| l == layer)
                .expect("Layer::ALL is exhaustive");
            format!("layer:{index}")
        }
        LibrarySource::RandomSubset(seed) => format!("subset:{seed}"),
    };
    let seed_from = if stage.seed_from.is_empty() {
        "-".to_owned()
    } else {
        stage
            .seed_from
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(":")
    };
    format!(
        "{},{algo},{mode},{lib},{},{},{seed_from}",
        stage.label, stage.salt, stage.generations_divisor,
    )
}

/// Parses the plan grammar back into a [`CampaignPlan`].
///
/// # Errors
///
/// A human-readable description of the first malformed field.
pub fn parse_plan(text: &str) -> Result<CampaignPlan, String> {
    let (name, stages) = text
        .split_once('|')
        .ok_or_else(|| format!("plan {text:?} missing '|' name separator"))?;
    if name.is_empty() {
        return Err("empty plan name".to_owned());
    }
    let mut plan = CampaignPlan::named(name);
    for stage in stages.split(';') {
        plan = plan.with_stage(parse_stage(stage)?);
    }
    if plan.stages.is_empty() {
        return Err("plan has no stages".to_owned());
    }
    Ok(plan)
}

fn parse_stage(text: &str) -> Result<StagePlan, String> {
    let fields: Vec<&str> = text.split(',').collect();
    let [label, algo, mode, lib, salt, divisor, seed_from] = fields.as_slice() else {
        return Err(format!("stage {text:?} must have 7 comma-separated fields"));
    };
    if label.is_empty() {
        return Err("empty stage label".to_owned());
    }
    let algorithm = match algo.split_once(':') {
        None if *algo == "nsga2" => StageAlgorithm::Nsga2 { tournament: None },
        None if *algo == "spea2" => StageAlgorithm::Spea2,
        Some(("nsga2", k)) => StageAlgorithm::Nsga2 {
            tournament: Some(parse_num(Some(k), "tournament size")?),
        },
        _ => return Err(format!("unknown algorithm {algo:?}")),
    };
    if matches!(
        algorithm,
        StageAlgorithm::Nsga2 {
            tournament: Some(0)
        }
    ) {
        return Err("tournament size must be at least 1".to_owned());
    }
    let mode = match *mode {
        "full" => ChoiceMode::Full,
        "pf" => ChoiceMode::ParetoFiltered,
        other => return Err(format!("unknown choice mode {other:?}")),
    };
    let library = match lib.split_once(':') {
        None if *lib == "main" => LibrarySource::Main,
        Some(("layer", index)) => {
            let index: usize = parse_num(Some(index), "layer index")?;
            let layer = *Layer::ALL
                .get(index)
                .ok_or_else(|| format!("layer index {index} out of range"))?;
            LibrarySource::SingleLayer(layer)
        }
        Some(("subset", seed)) => {
            LibrarySource::RandomSubset(parse_num(Some(seed), "subset seed")?)
        }
        _ => return Err(format!("unknown library source {lib:?}")),
    };
    let divisor: usize = parse_num(Some(divisor), "generations divisor")?;
    if divisor == 0 {
        return Err("generations divisor must be at least 1".to_owned());
    }
    Ok(StagePlan {
        label: (*label).to_owned(),
        algorithm,
        mode,
        library,
        salt: parse_num(Some(salt), "salt")?,
        generations_divisor: divisor,
        seed_from: match *seed_from {
            "-" => Vec::new(),
            list => list
                .split(':')
                .map(|n| parse_num(Some(n), "seed_from index"))
                .collect::<Result<Vec<usize>, String>>()?,
        },
    })
}

/// Resolves a plan argument: a built-in name (`fc`, `pf`, `proposed`,
/// `agnostic`, `pf-spea2`, `pf-tournament:<k>`, `random-subset:<seed>`)
/// or a raw plan-grammar string. Any built-in name may carry an
/// `/islands<n>` suffix — `proposed/islands4` runs the island-model
/// expansion of the proposed flow over four subpopulations.
///
/// # Errors
///
/// As [`parse_plan`] for raw strings; unknown built-in names report the
/// valid set.
pub fn plan_from_arg(arg: &str) -> Result<CampaignPlan, String> {
    if !arg.contains('|') {
        if let Some((base, count)) = arg.rsplit_once("/islands") {
            let islands: usize = parse_num(Some(count), "island count")?;
            if islands == 0 {
                return Err("island count must be at least 1".to_owned());
            }
            let plan = plan_from_arg(base)?;
            if matches!(plan.stages[0].algorithm, StageAlgorithm::Spea2) {
                return Err(format!(
                    "plan {base:?} cannot run as islands: migration seeds the \
                     first stage, which must be NSGA-II"
                ));
            }
            return Ok(plan.islands(islands));
        }
    }
    match arg {
        "fc" => return Ok(CampaignPlan::fc()),
        "pf" => return Ok(CampaignPlan::pf()),
        "proposed" => return Ok(CampaignPlan::proposed()),
        "agnostic" => return Ok(CampaignPlan::agnostic()),
        "pf-spea2" => return Ok(CampaignPlan::pf_spea2()),
        _ => {}
    }
    if let Some(("pf-tournament", k)) = arg.split_once(':') {
        let k: usize = parse_num(Some(k), "tournament size")?;
        if k == 0 {
            return Err("tournament size must be at least 1".to_owned());
        }
        return Ok(CampaignPlan::pf_with_tournament(k));
    }
    if let Some(("random-subset", seed)) = arg.split_once(':') {
        return Ok(CampaignPlan::random_subset(parse_num(
            Some(seed),
            "subset seed",
        )?));
    }
    if arg.contains('|') {
        return parse_plan(arg);
    }
    Err(format!(
        "unknown plan {arg:?}: expected fc|pf|proposed|agnostic|pf-spea2|pf-tournament:<k>|\
         random-subset:<seed> or a raw plan string"
    ))
}

/// Resolves a plan argument with an optional `@<scenario>` suffix:
/// `fc@lifetime:40000` runs the fcCLR plan under the permanent-fault
/// scenario, `proposed@chkmodes` the proposed flow over the
/// checkpoint-mode catalog. Without a suffix the plan runs under
/// [`Scenario::Transient`] — the original pipeline. `@` is reserved by
/// this shorthand and cannot appear in raw plan strings passed through
/// it.
///
/// # Errors
///
/// As [`plan_from_arg`] for the plan half; an unknown or malformed
/// scenario suffix reports the typed [`Scenario::parse`] message
/// (never panics).
pub fn plan_scenario_from_arg(arg: &str) -> Result<(CampaignPlan, Scenario), String> {
    match arg.split_once('@') {
        Some((plan, scenario)) => Ok((
            plan_from_arg(plan)?,
            Scenario::parse(scenario).map_err(|e| e.to_string())?,
        )),
        None => Ok((plan_from_arg(arg)?, Scenario::Transient)),
    }
}

/// One terminal summary of a finished campaign, carried by the `done`
/// event and the `done.txt` sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoneSummary {
    /// FNV-1a digest over the front's objective bits, point order
    /// preserved — the determinism contract's fingerprint.
    pub digest: u64,
    /// Front size.
    pub points: usize,
    /// Total fitness evaluations spent.
    pub evaluations: usize,
}

impl DoneSummary {
    /// The `done …` event line.
    pub fn encode(&self) -> String {
        format!(
            "done digest={:016x} points={} evaluations={}",
            self.digest, self.points, self.evaluations
        )
    }

    /// Parses a `done …` line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed token.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut digest = None;
        let mut points = None;
        let mut evaluations = None;
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("done") {
            return Err("not a done line".to_owned());
        }
        for tok in tokens {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("malformed token {tok:?}"))?;
            match key {
                "digest" => {
                    digest = Some(u64::from_str_radix(value, 16).map_err(|_| "malformed digest")?);
                }
                "points" => points = Some(parse_num(Some(value), "points")?),
                "evaluations" => evaluations = Some(parse_num(Some(value), "evaluations")?),
                _ => return Err(format!("unknown done key {key:?}")),
            }
        }
        Ok(DoneSummary {
            digest: digest.ok_or("missing digest")?,
            points: points.ok_or("missing points")?,
            evaluations: evaluations.ok_or("missing evaluations")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello clre-wire v1").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("hello clre-wire v1")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");

        let mut huge = Vec::from((MAX_FRAME + 1).to_be_bytes());
        huge.extend_from_slice(b"x");
        assert!(read_frame(&mut huge.as_slice()).is_err());
        // A truncated body is an error, not a silent None.
        let mut torn = Vec::from(10u32.to_be_bytes());
        torn.extend_from_slice(b"abc");
        assert!(read_frame(&mut torn.as_slice()).is_err());
    }

    #[test]
    fn builtin_plans_roundtrip_through_the_grammar() {
        for plan in [
            CampaignPlan::fc(),
            CampaignPlan::pf(),
            CampaignPlan::proposed(),
            CampaignPlan::agnostic(),
            CampaignPlan::pf_spea2(),
            CampaignPlan::pf_with_tournament(3),
            CampaignPlan::random_subset(9),
            CampaignPlan::single_layer(Layer::ALL[2]),
        ] {
            let text = encode_plan(&plan);
            assert_eq!(parse_plan(&text).unwrap(), plan, "plan {text}");
        }
    }

    #[test]
    fn submit_requests_roundtrip() {
        let req = SubmitRequest {
            tenant: "team-a".to_owned(),
            app: AppSpec::Synthetic { tasks: 12, seed: 3 },
            budget: StageBudget::new(8, 4).with_seed(11),
            plan: CampaignPlan::proposed(),
            scenario: Scenario::Transient,
        };
        assert_eq!(SubmitRequest::parse(&req.encode()).unwrap(), req);
        assert!(
            !req.encode().contains("scenario="),
            "default scenario stays off the wire for back-compat"
        );
        let sobel = SubmitRequest {
            app: AppSpec::Sobel { seed: 42 },
            ..req
        };
        assert_eq!(SubmitRequest::parse(&sobel.encode()).unwrap(), sobel);
    }

    #[test]
    fn submit_requests_carry_scenarios() {
        for scenario in [
            Scenario::PermanentAging {
                mission_time_hours: 40_000.0,
            },
            Scenario::CheckpointModes,
            Scenario::FpgaMitigation,
        ] {
            let req = SubmitRequest {
                tenant: "team-a".to_owned(),
                app: AppSpec::Sobel { seed: 7 },
                budget: StageBudget::new(8, 4).with_seed(11),
                plan: CampaignPlan::fc(),
                scenario,
            };
            let line = req.encode();
            assert!(line.contains("scenario="), "non-default rides the wire");
            assert_eq!(SubmitRequest::parse(&line).unwrap(), req);
        }
        // Unknown axes come back as the typed scenario message.
        let bad = SubmitRequest::parse(
            "submit tenant=a app=sobel:1 population=4 generations=2 seed=1 \
             plan=fcCLR|f,nsga2,full,main,1,1,- scenario=warpdrive",
        );
        let msg = bad.expect_err("unknown scenario must be rejected");
        assert!(msg.contains("invalid scenario"), "typed message: {msg}");
    }

    #[test]
    fn malformed_wire_inputs_are_rejected_with_reasons() {
        assert!(AppSpec::parse("synthetic:12").is_err(), "missing seed");
        assert!(AppSpec::parse("synthetic:12:3:9").is_err(), "trailing");
        assert!(AppSpec::parse("fpga:1").is_err(), "unknown app");
        assert!(parse_plan("noname").is_err(), "missing separator");
        assert!(parse_plan("x|a,nsga2,full,main,1").is_err(), "short stage");
        assert!(
            parse_plan("x|a,nsga2,full,layer:9,1,1,-").is_err(),
            "bad layer"
        );
        assert!(
            parse_plan("x|a,nsga2,full,main,1,0,-").is_err(),
            "zero divisor"
        );
        assert!(SubmitRequest::parse("submit tenant=a b app=sobel:1").is_err());
        assert!(
            SubmitRequest::parse("submit tenant=../up app=sobel:1 population=4 generations=2 seed=1 plan=fcCLR|f,nsga2,full,main,1,1,-")
                .is_err(),
            "tenant is a directory name, path metacharacters rejected"
        );
    }

    #[test]
    fn plan_arg_shorthands_resolve() {
        assert_eq!(plan_from_arg("fc").unwrap(), CampaignPlan::fc());
        assert_eq!(
            plan_from_arg("pf-tournament:3").unwrap(),
            CampaignPlan::pf_with_tournament(3)
        );
        assert_eq!(
            plan_from_arg("random-subset:9").unwrap(),
            CampaignPlan::random_subset(9)
        );
        let raw = encode_plan(&CampaignPlan::proposed());
        assert_eq!(plan_from_arg(&raw).unwrap(), CampaignPlan::proposed());
        assert!(plan_from_arg("mystery").is_err());
    }

    #[test]
    fn plan_at_scenario_shorthands_resolve() {
        assert_eq!(
            plan_scenario_from_arg("fc").unwrap(),
            (CampaignPlan::fc(), Scenario::Transient)
        );
        assert_eq!(
            plan_scenario_from_arg("fc@lifetime:40000").unwrap(),
            (
                CampaignPlan::fc(),
                Scenario::PermanentAging {
                    mission_time_hours: 40_000.0
                }
            )
        );
        assert_eq!(
            plan_scenario_from_arg("proposed@chkmodes").unwrap(),
            (CampaignPlan::proposed(), Scenario::CheckpointModes)
        );
        assert_eq!(
            plan_scenario_from_arg("pf-tournament:3@fpga").unwrap(),
            (
                CampaignPlan::pf_with_tournament(3),
                Scenario::FpgaMitigation
            )
        );
        let err = plan_scenario_from_arg("fc@warpdrive").expect_err("unknown axis");
        assert!(err.contains("invalid scenario"), "typed message: {err}");
        assert!(plan_scenario_from_arg("mystery@fpga").is_err(), "bad plan");
    }

    #[test]
    fn done_summaries_roundtrip() {
        let done = DoneSummary {
            digest: 0xdead_beef_0123_4567,
            points: 7,
            evaluations: 640,
        };
        assert_eq!(DoneSummary::parse(&done.encode()).unwrap(), done);
        assert!(DoneSummary::parse("trace foo").is_err());
    }
}

//! Server resilience contracts: graceful shutdown parks in-flight
//! campaigns and a restarted server resumes them bit-identically; a
//! dead client parks nothing — reconnecting resumes the stream from the
//! last received line.

mod common;

use common::{fresh_root, local_digest, tiny_request, RunningServer};

use clre::CampaignPlan;
use clre_serve::client::{Event, ServeClient, Submission};
use clre_serve::server::ServeConfig;
use clre_serve::wire::SubmitRequest;

/// `DeathPlan`-style connection-drop injector: a deterministic,
/// content-addressed choice of how many trace events to receive before
/// killing the connection — seeded like the chaos plans so reruns drop
/// at the same point.
struct DropPlan {
    seed: u64,
}

impl DropPlan {
    fn new(seed: u64) -> Self {
        DropPlan { seed }
    }

    /// How many trace events to consume before dropping, in
    /// `1..=ceiling` — FNV-1a over seed ‖ campaign key, so the plan is
    /// a pure function of its inputs.
    fn drop_after(&self, key: &str, ceiling: usize) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize % ceiling.max(1)) + 1
    }
}

fn accept(client: &mut ServeClient, request: &SubmitRequest) -> String {
    match client.submit(request).expect("submit") {
        Submission::Accepted { id } => id,
        Submission::Rejected { reason, detail } => panic!("rejected: {reason} {detail}"),
    }
}

/// Graceful shutdown mid-run: the in-flight campaign checkpoints and
/// parks (the streaming client is told so), a restarted server on the
/// same root resumes it automatically, and the resumed front digest is
/// bit-identical to the uninterrupted in-process baseline. Trace
/// history stays contiguous across the restart.
#[test]
fn shutdown_parks_and_restart_resumes_bit_identically() {
    let root = fresh_root("park-resume");
    let request = tiny_request("alpha", CampaignPlan::fc(), 10);
    let expected = local_digest(&request);

    let server = RunningServer::start(ServeConfig::new(&root).with_workers(2));
    let mut client = ServeClient::connect(&server.addr).expect("connect");
    let id = accept(&mut client, &request);

    // Let the campaign get demonstrably under way, then ask the server
    // to shut down from a second connection (the wire-level equivalent
    // of SIGTERM, which CI exercises against the real binary).
    let mut pre_lines = Vec::new();
    for _ in 0..2 {
        match client.next_event().expect("early trace") {
            Event::Trace(line) => pre_lines.push(line),
            other => panic!("campaign ended before shutdown: {other:?}"),
        }
    }
    let mut admin = ServeClient::connect(&server.addr).expect("admin connect");
    admin.shutdown().expect("bye");

    let parked_lines = loop {
        match client.next_event().expect("stream until parked") {
            Event::Trace(line) => pre_lines.push(line),
            Event::Parked {
                id: parked_id,
                lines,
                ..
            } => {
                assert_eq!(parked_id, id);
                break lines;
            }
            other => panic!("expected parked, got {other:?}"),
        }
    };
    assert_eq!(
        parked_lines,
        pre_lines.len(),
        "parked event reports exactly the lines already streamed"
    );
    server.join();

    // Restart on the same root: the parked campaign resumes without any
    // client asking for it. Reattach from where streaming left off.
    let server = RunningServer::start(ServeConfig::new(&root).with_workers(2));
    let mut client = ServeClient::connect(&server.addr).expect("reconnect");
    client
        .attach("alpha", &id, pre_lines.len())
        .expect("reattach");
    let (post_lines, terminal) = client.drain().expect("drain resumed campaign");
    match terminal {
        Event::Done(summary) => assert_eq!(
            summary.digest, expected,
            "resumed front must be bit-identical to the uninterrupted baseline"
        ),
        other => panic!("expected done after resume, got {other:?}"),
    }

    // Full replay equals what the two attachments saw in pieces: the
    // trace history survived the park/restart contiguously.
    let mut replay = ServeClient::connect(&server.addr).expect("replay connect");
    replay.attach("alpha", &id, 0).expect("replay attach");
    let (all_lines, _) = replay.drain().expect("replay drain");
    let stitched: Vec<String> = pre_lines.iter().chain(post_lines.iter()).cloned().collect();
    assert_eq!(all_lines, stitched, "no lines lost or duplicated");
    server.stop();
}

/// The connection-drop injector: a client that dies mid-stream parks
/// nothing — the campaign runs to completion server-side — and a
/// reconnect resumes streaming from the last received line with no gap
/// and no overlap.
#[test]
fn client_disconnect_mid_stream_loses_nothing() {
    let root = fresh_root("drop-injector");
    let request = tiny_request("alpha", CampaignPlan::fc(), 8);
    let expected = local_digest(&request);

    let server = RunningServer::start(ServeConfig::new(&root).with_workers(2));
    let plan = DropPlan::new(0xD0_5E_ED);
    let drop_after = plan.drop_after("alpha/fcCLR", 3);

    let mut client = ServeClient::connect(&server.addr).expect("connect");
    let id = accept(&mut client, &request);
    let mut seen = Vec::new();
    for _ in 0..drop_after {
        match client.next_event().expect("pre-drop trace") {
            Event::Trace(line) => seen.push(line),
            other => panic!("campaign ended before the injected drop: {other:?}"),
        }
    }
    drop(client); // the injected mid-stream death

    // Reconnect and resume from the exact line index we had received.
    let mut client = ServeClient::connect(&server.addr).expect("reconnect");
    client
        .attach("alpha", &id, seen.len())
        .expect("reattach after drop");
    let (rest, terminal) = client.drain().expect("drain to completion");
    match terminal {
        Event::Done(summary) => assert_eq!(
            summary.digest, expected,
            "client death must not perturb the campaign"
        ),
        other => panic!("expected done, got {other:?}"),
    }

    // Continuity: replaying the whole log equals pre-drop ++ post-drop.
    let mut replay = ServeClient::connect(&server.addr).expect("replay connect");
    replay.attach("alpha", &id, 0).expect("replay attach");
    let (all_lines, _) = replay.drain().expect("replay drain");
    let stitched: Vec<String> = seen.iter().chain(rest.iter()).cloned().collect();
    assert_eq!(
        all_lines, stitched,
        "resumed stream continues from the last emitted generation"
    );
    server.stop();
}

//! Server round-trip contracts: digest parity with in-process runs,
//! cross-tenant cache sharing, admission control, and the request
//! surface (`ping`/`stats`).

mod common;

use common::{fresh_root, local_digest, tiny_request, RunningServer};

use clre::CampaignPlan;
use clre_serve::client::{Event, ServeClient, Submission};
use clre_serve::server::ServeConfig;

fn submit_and_drain(addr: &str, request: &clre_serve::wire::SubmitRequest) -> (Vec<String>, Event) {
    let mut client = ServeClient::connect(addr).expect("connect");
    match client.submit(request).expect("submit") {
        Submission::Accepted { .. } => {}
        Submission::Rejected { reason, detail } => panic!("rejected: {reason} {detail}"),
    }
    client.drain().expect("drain")
}

/// The determinism contract: a campaign run through the server — pooled
/// workers, shared cache, fair gate, supervision — produces a front
/// digest bit-identical to the same plan run in-process (serial, no
/// cache). Checked for the single-stage fcCLR and the seeded two-stage
/// proposed flow.
#[test]
fn server_digest_matches_in_process_for_fc_and_proposed() {
    let server = RunningServer::start(ServeConfig::new(fresh_root("parity")).with_workers(2));
    for (tenant, plan) in [
        ("alpha", CampaignPlan::fc()),
        ("beta", CampaignPlan::proposed()),
    ] {
        let request = tiny_request(tenant, plan, 4);
        let expected = local_digest(&request);
        let (traces, terminal) = submit_and_drain(&server.addr, &request);
        assert!(
            !traces.is_empty(),
            "{tenant}: live trace lines streamed per generation"
        );
        assert!(
            traces.iter().all(|l| l.starts_with("trace-v1 ")),
            "{tenant}: events carry trace-v1 payloads"
        );
        match terminal {
            Event::Done(summary) => {
                assert_eq!(
                    summary.digest, expected,
                    "{tenant}: server front must be bit-identical to in-process"
                );
                assert!(summary.points > 0);
            }
            other => panic!("{tenant}: expected done, got {other:?}"),
        }
    }
    server.stop();
}

/// Two tenants on the same platform run concurrently against one shared
/// cache: both fronts stay bit-identical to their isolated in-process
/// runs, and the second tenant's library build is answered from the
/// first tenant's L1 task-analysis entries (cross-tenant hits > 0).
#[test]
fn concurrent_tenants_share_the_analysis_cache_without_result_drift() {
    let server = RunningServer::start(ServeConfig::new(fresh_root("xtenant")).with_workers(2));
    let fc = tiny_request("alpha", CampaignPlan::fc(), 4);
    let pf = tiny_request("beta", CampaignPlan::pf(), 4);
    let expected_fc = local_digest(&fc);
    let expected_pf = local_digest(&pf);

    // Isolated baseline for the hit accounting: each campaign alone
    // against a private cache.
    let isolated_hits: u64 = [&fc, &pf]
        .iter()
        .map(|req| {
            let (platform, graph) = clre_serve::server::build_app(&req.app).unwrap();
            let cache = clre::EvalCache::shared();
            let dse = clre::methodology::ClrEarly::with_tdse_config(
                &graph,
                &platform,
                clre::tdse::TdseConfig::default().with_eval_cache(std::sync::Arc::clone(&cache)),
            )
            .unwrap()
            .with_cache(std::sync::Arc::clone(&cache));
            dse.run(&req.plan, &req.budget).unwrap();
            cache.analysis_counts().hits
        })
        .sum();

    let addr = server.addr.clone();
    let results = std::thread::scope(|scope| {
        let handles = [
            scope.spawn(|| submit_and_drain(&addr, &fc)),
            scope.spawn(|| submit_and_drain(&addr, &pf)),
        ];
        handles.map(|h| h.join().expect("tenant thread"))
    });
    for ((_, terminal), expected) in results.iter().zip([expected_fc, expected_pf]) {
        match terminal {
            Event::Done(summary) => assert_eq!(
                summary.digest, expected,
                "shared cache must not perturb either tenant's front"
            ),
            other => panic!("expected done, got {other:?}"),
        }
    }

    let mut client = ServeClient::connect(&server.addr).expect("connect");
    let stats = client.stats().expect("stats");
    let shared_hits: u64 = stats
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("cache.paper.analysis_hits=")?.parse().ok())
        .expect("stats reports the paper-platform cache");
    assert!(
        shared_hits > isolated_hits,
        "cross-tenant L1 hits required: shared={shared_hits} vs isolated-sum={isolated_hits} \
         (stats: {stats})"
    );
    server.stop();
}

/// Admission control rejects deterministically: a zero per-tenant quota
/// reports `tenant-quota`, a zero global ceiling reports `server-busy`,
/// and a malformed submit line never reaches admission.
#[test]
fn admission_rejections_are_reported_with_reasons() {
    let server = RunningServer::start(ServeConfig::new(fresh_root("quota")).with_tenant_quota(0));
    let mut client = ServeClient::connect(&server.addr).expect("connect");
    match client
        .submit(&tiny_request("alpha", CampaignPlan::fc(), 2))
        .expect("submit")
    {
        Submission::Rejected { reason, .. } => assert_eq!(reason, "tenant-quota"),
        other => panic!("expected rejection, got {other:?}"),
    }
    server.stop();

    let server = RunningServer::start(ServeConfig::new(fresh_root("busy")).with_max_active(0));
    let mut client = ServeClient::connect(&server.addr).expect("connect");
    match client
        .submit(&tiny_request("alpha", CampaignPlan::fc(), 2))
        .expect("submit")
    {
        Submission::Rejected { reason, .. } => assert_eq!(reason, "server-busy"),
        other => panic!("expected rejection, got {other:?}"),
    }
    client
        .ping()
        .expect("connection stays usable after rejection");
    server.stop();
}

/// A submission carrying a reliability scenario runs the campaign under
/// that scenario's fault mechanism, catalog and objectives — and its
/// front digest matches the same scenario run in-process. The default
/// transient submissions above pin the original pipeline unchanged.
#[test]
fn scenario_submissions_run_under_their_scenario() {
    let server = RunningServer::start(
        // A tiny trace ring: the campaign streams more lines than the
        // ring holds, so `attach from=0` must replay from trace.txt.
        ServeConfig::new(fresh_root("scenario"))
            .with_workers(2)
            .with_trace_ring(2),
    );
    let mut request = tiny_request("alpha", CampaignPlan::fc(), 4);
    request.scenario = clre::Scenario::parse("lifetime:5000").unwrap();
    let expected = local_digest(&request);
    let (traces, terminal) = submit_and_drain(&server.addr, &request);
    let streamed = traces.len();
    match terminal {
        Event::Done(summary) => assert_eq!(
            summary.digest, expected,
            "server scenario run must match the in-process scenario run"
        ),
        other => panic!("expected done, got {other:?}"),
    }

    // The transient run of the same plan must differ: the scenario
    // actually changed the physics, it did not just relabel the run.
    let transient = tiny_request("alpha", CampaignPlan::fc(), 4);
    assert_ne!(
        local_digest(&transient),
        expected,
        "lifetime scenario must change the front"
    );

    // Attach from line 0: everything older than the 2-line ring comes
    // back from the trace.txt spill, indices intact.
    let mut client = ServeClient::connect(&server.addr).expect("connect");
    let id = "c1".to_owned();
    let lines = client.attach("alpha", &id, 0).expect("attach");
    assert_eq!(lines, streamed, "global line count survives the ring");
    let (replayed, terminal) = client.drain().expect("drain replay");
    assert_eq!(
        replayed.len(),
        streamed,
        "ring-evicted lines replay from disk"
    );
    assert!(matches!(terminal, Event::Done(_)));
    server.stop();
}

/// The request surface outside campaign streaming: ping, stats on an
/// idle server, and unknown-campaign attach.
#[test]
fn ping_stats_and_unknown_attach_behave() {
    let server = RunningServer::start(ServeConfig::new(fresh_root("surface")));
    let mut client = ServeClient::connect(&server.addr).expect("connect");
    client.ping().expect("pong");
    let stats = client.stats().expect("stats");
    assert!(stats.contains("active=0"), "idle server: {stats}");
    let err = client
        .attach("ghost", "c99", 0)
        .expect_err("unknown campaign is an error");
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    server.stop();
}

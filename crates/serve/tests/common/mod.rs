//! Shared scaffolding for the server integration tests.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use clre::methodology::StageBudget;
use clre::CampaignPlan;
use clre_serve::server::{build_app, front_digest, ServeConfig, Server};
use clre_serve::wire::{AppSpec, SubmitRequest};

/// A clean per-test state directory under the system temp dir.
pub fn fresh_root(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("clre-serve-it-{name}"));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A server running on its own thread, bound to an ephemeral port.
pub struct RunningServer {
    /// `host:port` to connect to.
    pub addr: String,
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl RunningServer {
    /// Binds and serves `config` in the background.
    pub fn start(config: ServeConfig) -> RunningServer {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral");
        let addr = server.local_addr().expect("local addr").to_string();
        let stop = server.stop_flag();
        let thread = std::thread::spawn(move || server.run());
        RunningServer { addr, stop, thread }
    }

    /// Raises the stop flag and waits for the accept loop (and every
    /// campaign thread) to finish.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.thread.join().expect("server thread");
    }

    /// Waits for the server to exit on its own (e.g. after a client's
    /// `shutdown` request).
    #[allow(dead_code)] // each test binary compiles its own copy of this module
    pub fn join(self) {
        self.thread.join().expect("server thread");
    }
}

/// The Tiny workload every test submits: 12-task synthetic app on the
/// paper platform, population 8.
pub fn tiny_request(tenant: &str, plan: CampaignPlan, generations: usize) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_owned(),
        app: AppSpec::Synthetic { tasks: 12, seed: 3 },
        budget: StageBudget::new(8, generations).with_seed(11),
        plan,
        scenario: clre::Scenario::Transient,
    }
}

/// The in-process baseline: the same plan and scenario run directly
/// (serial, no cache, no supervision). The server must reproduce this
/// digest bit-exactly.
pub fn local_digest(request: &SubmitRequest) -> u64 {
    let (platform, graph) = build_app(&request.app).expect("app builds");
    let front = clre::methodology::ClrEarly::with_scenario(&graph, &platform, &request.scenario)
        .expect("tDSE succeeds")
        .run(&request.plan, &request.budget)
        .expect("in-process campaign completes");
    front_digest(&front)
}

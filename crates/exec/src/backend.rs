//! The evaluation-backend abstraction: one batch-evaluation API from
//! threads to processes.
//!
//! [`EvalBackend`] is the seam that lets a campaign run its per-
//! generation evaluation batches anywhere without the MOEA layer
//! changing shape: items go in as opaque encoded strings, results come
//! back in pre-sized indexed slots (slot `i` answers item `i`, always),
//! and everything scheduling-dependent is confined to [`ExecStats`]
//! telemetry. Two implementations ship:
//!
//! * [`ThreadBackend`] — the existing in-process scoped-thread pool
//!   ([`ExecPool`]) behind the backend API, resolving contexts through
//!   an [`EvalVocab`].
//! * [`SubprocessBackend`] — a pool of `clre-exec-worker` child
//!   processes speaking `exec-wire v1` (see [`crate::wire`]).
//!
//! The determinism contract mirrors [`ExecPool::evaluate_batch`]: the
//! *outputs* of a batch depend only on the context and the items, never
//! on the backend choice, worker count, chunking, or which worker died
//! mid-batch. A worker lost mid-batch is respawned once and its chunk
//! re-sent; a chunk that cannot be completed comes back as per-item
//! `Err` slots, which callers resolve by evaluating those items
//! in-process — so the merged result is bit-identical either way.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::LatencyHistogram;
use crate::pool::{ExecPool, ExecStats};

/// One batch's results: `outputs[i]` answers `items[i]` (an `Err` slot
/// carries the failure message for that item alone), plus the batch's
/// scheduling telemetry.
#[derive(Debug, Clone)]
pub struct EncodedBatch {
    /// Per-item outcome, in item order.
    pub outputs: Vec<Result<String, String>>,
    /// Wall time / per-worker split / latency histogram / deaths.
    pub stats: ExecStats,
}

/// Worker-health snapshot of a backend, for telemetry and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendHealth {
    /// Workers the backend is configured to run.
    pub workers: usize,
    /// Workers currently alive (spawned and not known dead). For the
    /// in-process backend this equals `workers`.
    pub alive: usize,
    /// Workers lost over the backend's lifetime (process deaths,
    /// protocol failures).
    pub lost: usize,
    /// Workers respawned after a loss.
    pub restarts: usize,
    /// Batches evaluated.
    pub batches: u64,
    /// Items evaluated (counting re-sends after a worker loss once).
    pub items: u64,
}

/// A whole-batch failure: the backend could not produce indexed slots
/// at all (as opposed to per-item `Err` slots inside [`EncodedBatch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    /// Human-readable failure description.
    pub message: String,
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for BackendError {}

impl BackendError {
    /// A backend error with this message.
    pub fn new(message: impl Into<String>) -> Self {
        BackendError {
            message: message.into(),
        }
    }
}

/// A place evaluation batches run: threads, subprocesses, or anything
/// else that can turn `(context, items)` into indexed output slots.
///
/// Implementations must uphold the determinism contract (see the
/// [module docs](self)): `evaluate_encoded` is a pure function of
/// `(context, items)` up to the `Err` slots it reports, and telemetry
/// is the only thing allowed to vary between calls.
pub trait EvalBackend: Send + Sync + fmt::Debug {
    /// A short stable name (`"threads"`, `"subprocess"`), for telemetry
    /// and reports.
    fn name(&self) -> &'static str;

    /// The configured worker count.
    fn workers(&self) -> usize;

    /// Evaluates every item under `context`, returning one output slot
    /// per item in item order.
    ///
    /// # Errors
    ///
    /// [`BackendError`] only when no indexed slots could be produced at
    /// all (e.g. the context itself does not resolve); per-item
    /// failures travel as `Err` slots inside the batch.
    fn evaluate_encoded(
        &self,
        context: &str,
        items: &[String],
    ) -> Result<EncodedBatch, BackendError>;

    /// Current worker health.
    fn health(&self) -> BackendHealth;

    /// Flushes any buffered telemetry the backend holds (a no-op for
    /// backends that report synchronously).
    fn flush_telemetry(&self);
}

/// Resolves an opaque context string into an evaluation function. The
/// same vocabulary drives the in-process [`ThreadBackend`] and the
/// `clre-exec-worker` loop, which is what makes the two backends
/// interchangeable: both evaluate the same resolved function.
pub trait EvalVocab: Send + Sync + fmt::Debug {
    /// Resolves `context` into a shareable evaluator.
    ///
    /// # Errors
    ///
    /// A human-readable description of why the context is unknown or
    /// malformed. Implementations should cache resolved contexts —
    /// resolution may be expensive (model construction).
    fn resolve(&self, context: &str) -> Result<Arc<dyn ItemEval>, String>;
}

/// One resolved context: evaluates a single encoded item into a single
/// encoded output. Must be pure — the determinism contract of every
/// backend rests on it.
pub trait ItemEval: Send + Sync {
    /// Evaluates one item.
    ///
    /// # Errors
    ///
    /// A human-readable per-item failure message (transported to the
    /// caller's `Err` slot).
    fn eval(&self, item: &str) -> Result<String, String>;
}

/// The in-process backend: [`ExecPool`] scoped threads behind the
/// [`EvalBackend`] API, with contexts resolved (and cached) through an
/// [`EvalVocab`].
pub struct ThreadBackend {
    pool: ExecPool,
    vocab: Arc<dyn EvalVocab>,
    resolved: Mutex<HashMap<String, Arc<dyn ItemEval>>>,
    batches: Mutex<(u64, u64)>,
}

impl fmt::Debug for ThreadBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadBackend")
            .field("pool", &self.pool)
            .field("vocab", &self.vocab)
            .finish_non_exhaustive()
    }
}

impl ThreadBackend {
    /// A thread backend fanning batches over `pool`, resolving contexts
    /// through `vocab`.
    pub fn new(pool: ExecPool, vocab: Arc<dyn EvalVocab>) -> Self {
        ThreadBackend {
            pool,
            vocab,
            resolved: Mutex::new(HashMap::new()),
            batches: Mutex::new((0, 0)),
        }
    }

    fn resolve(&self, context: &str) -> Result<Arc<dyn ItemEval>, String> {
        let mut resolved = self.resolved.lock().expect("context cache poisoned");
        if let Some(eval) = resolved.get(context) {
            return Ok(Arc::clone(eval));
        }
        let eval = self.vocab.resolve(context)?;
        resolved.insert(context.to_owned(), Arc::clone(&eval));
        Ok(eval)
    }
}

impl EvalBackend for ThreadBackend {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn workers(&self) -> usize {
        self.pool.workers()
    }

    fn evaluate_encoded(
        &self,
        context: &str,
        items: &[String],
    ) -> Result<EncodedBatch, BackendError> {
        let eval = self.resolve(context).map_err(BackendError::new)?;
        let (outputs, stats) = self.pool.evaluate_batch(items, |item| eval.eval(item));
        let mut counters = self.batches.lock().expect("backend counters poisoned");
        counters.0 += 1;
        counters.1 += items.len() as u64;
        Ok(EncodedBatch { outputs, stats })
    }

    fn health(&self) -> BackendHealth {
        let (batches, items) = *self.batches.lock().expect("backend counters poisoned");
        BackendHealth {
            workers: self.pool.workers(),
            alive: self.pool.workers(),
            lost: 0,
            restarts: 0,
            batches,
            items,
        }
    }

    fn flush_telemetry(&self) {}
}

/// Splits `total` items into `chunks` contiguous ranges, balanced to
/// within one item — the deterministic item→worker placement both the
/// subprocess backend and its tests rely on.
pub(crate) fn chunk_bounds(total: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1);
    (0..chunks)
        .map(|c| (c * total / chunks, (c + 1) * total / chunks))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// Builds an [`ExecStats`] for a backend batch from per-chunk item
/// counts and wall time: the per-item latency histogram is approximated
/// by the chunk average (telemetry only — never a correctness input).
pub(crate) fn batch_stats(
    wall_nanos: u64,
    per_worker: Vec<usize>,
    worker_deaths: usize,
) -> ExecStats {
    let total: usize = per_worker.iter().sum();
    let mut histogram = LatencyHistogram::new();
    if total > 0 {
        let avg = wall_nanos / total as u64;
        for _ in 0..total {
            histogram.record(avg);
        }
    }
    ExecStats {
        wall_nanos,
        per_worker,
        histogram,
        worker_deaths,
    }
}

pub(crate) fn duration_nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A vocabulary of arithmetic contexts: `add <k>` maps item `n` to
    /// `n + k`, and `fail` items report per-item errors.
    #[derive(Debug)]
    pub(crate) struct ArithVocab;

    struct Adder(i64);

    impl ItemEval for Adder {
        fn eval(&self, item: &str) -> Result<String, String> {
            let n: i64 = item.parse().map_err(|_| format!("bad item {item:?}"))?;
            Ok((n + self.0).to_string())
        }
    }

    impl EvalVocab for ArithVocab {
        fn resolve(&self, context: &str) -> Result<Arc<dyn ItemEval>, String> {
            match context.strip_prefix("add ") {
                Some(k) => Ok(Arc::new(Adder(
                    k.parse().map_err(|_| format!("bad addend {k:?}"))?,
                ))),
                None => Err(format!("unknown context {context:?}")),
            }
        }
    }

    #[test]
    fn thread_backend_fills_slots_in_item_order() {
        let backend = ThreadBackend::new(ExecPool::new(4), Arc::new(ArithVocab));
        let items: Vec<String> = (0..50).map(|n| n.to_string()).collect();
        let batch = backend.evaluate_encoded("add 10", &items).unwrap();
        for (i, out) in batch.outputs.iter().enumerate() {
            assert_eq!(out.as_deref(), Ok((i + 10).to_string().as_str()));
        }
        assert_eq!(batch.stats.per_worker.iter().sum::<usize>(), 50);
        let health = backend.health();
        assert_eq!(health.batches, 1);
        assert_eq!(health.items, 50);
        assert_eq!(health.lost, 0);
        assert_eq!(backend.name(), "threads");
    }

    #[test]
    fn item_failures_are_slots_not_batch_errors() {
        let backend = ThreadBackend::new(ExecPool::new(2), Arc::new(ArithVocab));
        let items = vec!["1".to_owned(), "oops".to_owned(), "3".to_owned()];
        let batch = backend.evaluate_encoded("add 1", &items).unwrap();
        assert_eq!(batch.outputs[0].as_deref(), Ok("2"));
        assert!(batch.outputs[1].is_err(), "bad item is an Err slot");
        assert_eq!(batch.outputs[2].as_deref(), Ok("4"));
        // An unresolvable context, by contrast, is a whole-batch error.
        assert!(backend.evaluate_encoded("mul 2", &items).is_err());
    }

    #[test]
    fn contexts_are_cached_per_backend() {
        #[derive(Debug)]
        struct Counting(Mutex<usize>);
        impl EvalVocab for Counting {
            fn resolve(&self, _: &str) -> Result<Arc<dyn ItemEval>, String> {
                *self.0.lock().unwrap() += 1;
                Ok(Arc::new(Adder(0)))
            }
        }
        let vocab = Arc::new(Counting(Mutex::new(0)));
        let backend = ThreadBackend::new(ExecPool::serial(), Arc::clone(&vocab) as _);
        let items = vec!["1".to_owned()];
        backend.evaluate_encoded("a", &items).unwrap();
        backend.evaluate_encoded("a", &items).unwrap();
        backend.evaluate_encoded("b", &items).unwrap();
        assert_eq!(*vocab.0.lock().unwrap(), 2, "one resolve per context");
    }

    #[test]
    fn chunking_is_contiguous_and_balanced() {
        assert_eq!(chunk_bounds(10, 3), vec![(0, 3), (3, 6), (6, 10)]);
        assert_eq!(
            chunk_bounds(2, 4),
            vec![(0, 1), (1, 2)],
            "empty chunks dropped"
        );
        assert_eq!(chunk_bounds(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(chunk_bounds(5, 1), vec![(0, 5)]);
        // Covers every index exactly once, in order.
        let bounds = chunk_bounds(1000, 7);
        let mut next = 0;
        for (lo, hi) in bounds {
            assert_eq!(lo, next);
            next = hi;
        }
        assert_eq!(next, 1000);
    }
}

//! Length-prefixed text framing shared by every CL(R)Early wire
//! protocol, plus the `exec-wire v1` batch-evaluation grammar spoken
//! between a [`SubprocessBackend`] parent and its `clre-exec-worker`
//! children.
//!
//! Every frame is a big-endian `u32` byte length followed by that many
//! bytes of UTF-8, one logical line per frame (no trailing newline) —
//! the exact framing `clre-serve`'s `clre-wire v1` uses, hoisted here so
//! both protocols share one implementation. All payloads are plain text
//! with space-separated `key=value` tokens, so a protocol exchange can
//! be driven by hand and grepped in captures.
//!
//! The `exec-wire v1` conversation (parent ⇄ worker over stdin/stdout):
//!
//! ```text
//! parent: hello exec-wire v1            worker: hello exec-wire v1
//! parent: context id=<n> <text>         worker: ready id=<n>
//!                                           or: error <message>
//! parent: batch ctx=<n> n=<k>           worker: k frames, each
//! parent: k frames, each                        ok <payload>
//!         item <payload>                    or: err <message>
//!                                       worker: done n=<k> eval_us=<t>
//! parent: shutdown                      (worker exits)
//! ```
//!
//! A context is the full description of the evaluation function (for
//! the DSE: application, scenario, genome-encoding mode, library
//! source); workers cache resolved contexts by id, so a campaign pays
//! the model-construction cost once per worker, not once per batch.
//! Item and output payloads are single-line opaque strings chosen by
//! the caller; the DSE transports `f64` results as hexadecimal IEEE-754
//! bit patterns so a subprocess round-trip is bit-exact.
//!
//! [`SubprocessBackend`]: crate::SubprocessBackend

use std::io::{self, Read, Write};

/// The `exec-wire` protocol version token exchanged in the handshake.
pub const EXEC_WIRE_VERSION: &str = "exec-wire v1";

/// Frames larger than this are rejected before allocation: no legal
/// line (trace, plan, genome, stats) comes anywhere near it, so an
/// oversized length prefix means a confused or hostile peer.
pub const MAX_FRAME: u32 = 1 << 20;

/// Writes one line as a length-prefixed frame and flushes, so the peer
/// sees it immediately (live streaming depends on this).
///
/// # Errors
///
/// Any underlying I/O failure; `line` longer than [`MAX_FRAME`] is
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, line: &str) -> io::Result<()> {
    let len = u32::try_from(line.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// Truncated frames, invalid UTF-8, and lengths beyond [`MAX_FRAME`]
/// are [`io::ErrorKind::InvalidData`]; otherwise the underlying error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "truncated frame"))?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Encodes a slice of `f64`s as space-separated hexadecimal IEEE-754
/// bit patterns — the exec-wire transport for evaluation results. The
/// round-trip through [`decode_f64s`] is bit-exact, which is what makes
/// a subprocess-evaluated front digest-identical to an in-process one.
pub fn encode_f64s(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{:016x}", v.to_bits()))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Decodes the [`encode_f64s`] form.
///
/// # Errors
///
/// A description of the first malformed token.
pub fn decode_f64s(text: &str) -> Result<Vec<f64>, String> {
    text.split_whitespace()
        .map(|tok| {
            u64::from_str_radix(tok, 16)
                .map(f64::from_bits)
                .map_err(|_| format!("malformed f64 bits {tok:?}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello exec-wire v1").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "item 0:1:2,3:4:5").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "hello exec-wire v1");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "item 0:1:2,3:4:5");
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend((MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err(), "oversized length");
        let mut buf = Vec::new();
        buf.extend(10u32.to_be_bytes());
        buf.extend(b"short");
        assert!(read_frame(&mut buf.as_slice()).is_err(), "truncated body");
    }

    #[test]
    fn f64_transport_is_bit_exact() {
        let values = [0.0, -0.0, 1.5e-300, f64::MAX, f64::INFINITY, 0.1 + 0.2];
        let decoded = decode_f64s(&encode_f64s(&values)).unwrap();
        assert_eq!(values.len(), decoded.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f64s("zzzz").is_err());
        assert!(decode_f64s("").unwrap().is_empty());
    }
}

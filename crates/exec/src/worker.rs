//! The `exec-wire v1` worker loop — the child half of the
//! [`SubprocessBackend`] conversation, generic over its transport and
//! vocabulary so it is testable in-memory and reusable by any binary
//! that can supply an [`EvalVocab`].
//!
//! The production binary is `clre-exec-worker` (in the `clre` crate,
//! which owns the DSE vocabulary); this module owns only the protocol:
//! handshake, context registration, batch streaming, shutdown. See
//! [`crate::wire`] for the grammar.
//!
//! [`SubprocessBackend`]: crate::SubprocessBackend

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Instant;

use crate::backend::{EvalVocab, ItemEval};
use crate::wire::{read_frame, write_frame, EXEC_WIRE_VERSION};

/// Runs the worker loop over `input`/`output` until the peer sends
/// `shutdown` or closes the stream, resolving contexts through `vocab`.
///
/// Protocol errors on the parent's side (a malformed request line) are
/// answered with an `error …` frame and the loop continues; the worker
/// only exits on `shutdown`, EOF, or a transport failure.
///
/// # Errors
///
/// Transport I/O failures (a vanished parent). Evaluation failures
/// never error the loop — they travel as `err …` output frames.
pub fn run_worker(
    input: &mut impl Read,
    output: &mut impl Write,
    vocab: &dyn EvalVocab,
) -> io::Result<()> {
    match read_frame(input)? {
        Some(hello) if hello == format!("hello {EXEC_WIRE_VERSION}") => {
            write_frame(output, &format!("hello {EXEC_WIRE_VERSION}"))?;
        }
        Some(other) => {
            write_frame(output, &format!("error unsupported handshake {other:?}"))?;
            return Ok(());
        }
        None => return Ok(()),
    }
    let mut contexts: HashMap<u64, Arc<dyn ItemEval>> = HashMap::new();
    while let Some(line) = read_frame(input)? {
        let (verb, rest) = line.split_once(' ').unwrap_or((line.as_str(), ""));
        match verb {
            "shutdown" => return Ok(()),
            "context" => {
                let (id, text) = rest.split_once(' ').unwrap_or((rest, ""));
                let Some(id) = id.strip_prefix("id=").and_then(|n| n.parse::<u64>().ok()) else {
                    write_frame(output, &format!("error malformed context line {line:?}"))?;
                    continue;
                };
                match vocab.resolve(text) {
                    Ok(eval) => {
                        contexts.insert(id, eval);
                        write_frame(output, &format!("ready id={id}"))?;
                    }
                    Err(e) => write_frame(output, &format!("error context id={id}: {e}"))?,
                }
            }
            "batch" => {
                let mut ctx = None;
                let mut n = None;
                for tok in rest.split_whitespace() {
                    match tok.split_once('=') {
                        Some(("ctx", v)) => ctx = v.parse::<u64>().ok(),
                        Some(("n", v)) => n = v.parse::<usize>().ok(),
                        _ => {}
                    }
                }
                let (Some(ctx), Some(n)) = (ctx, n) else {
                    write_frame(output, &format!("error malformed batch line {line:?}"))?;
                    continue;
                };
                // The n item frames are committed by the parent either
                // way, so consume them before reporting an unknown
                // context — the streams stay in lockstep.
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    match read_frame(input)? {
                        Some(frame) => {
                            items.push(frame.strip_prefix("item ").map(str::to_owned).ok_or_else(
                                || {
                                    io::Error::new(
                                        io::ErrorKind::InvalidData,
                                        format!("expected item frame, got {frame:?}"),
                                    )
                                },
                            )?)
                        }
                        None => {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "batch truncated",
                            ))
                        }
                    }
                }
                let Some(eval) = contexts.get(&ctx) else {
                    for _ in 0..n {
                        write_frame(output, &format!("err unknown context id {ctx}"))?;
                    }
                    write_frame(output, &format!("done n={n} eval_us=0"))?;
                    continue;
                };
                let start = Instant::now();
                for item in &items {
                    match eval.eval(item) {
                        Ok(payload) => write_frame(output, &format!("ok {payload}"))?,
                        Err(e) => write_frame(output, &format!("err {e}"))?,
                    }
                }
                let eval_us = start.elapsed().as_micros();
                write_frame(output, &format!("done n={n} eval_us={eval_us}"))?;
            }
            _ => write_frame(output, &format!("error unknown request {verb:?}"))?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{EvalVocab, ItemEval};

    #[derive(Debug)]
    struct Doubler;

    struct DoubleEval;

    impl ItemEval for DoubleEval {
        fn eval(&self, item: &str) -> Result<String, String> {
            let n: i64 = item.parse().map_err(|_| format!("bad item {item:?}"))?;
            Ok((2 * n).to_string())
        }
    }

    impl EvalVocab for Doubler {
        fn resolve(&self, context: &str) -> Result<Arc<dyn ItemEval>, String> {
            match context {
                "double" => Ok(Arc::new(DoubleEval)),
                other => Err(format!("unknown context {other:?}")),
            }
        }
    }

    fn converse(lines: &[&str]) -> Vec<String> {
        let mut input = Vec::new();
        for line in lines {
            write_frame(&mut input, line).unwrap();
        }
        let mut output = Vec::new();
        run_worker(&mut input.as_slice(), &mut output, &Doubler).unwrap();
        let mut replies = Vec::new();
        let mut r = output.as_slice();
        while let Some(line) = read_frame(&mut r).unwrap() {
            replies.push(line);
        }
        replies
    }

    #[test]
    fn full_conversation_roundtrips() {
        let replies = converse(&[
            "hello exec-wire v1",
            "context id=1 double",
            "batch ctx=1 n=3",
            "item 5",
            "item -2",
            "item nope",
            "shutdown",
        ]);
        assert_eq!(replies[0], "hello exec-wire v1");
        assert_eq!(replies[1], "ready id=1");
        assert_eq!(replies[2], "ok 10");
        assert_eq!(replies[3], "ok -4");
        assert_eq!(replies[4], "err bad item \"nope\"");
        assert!(replies[5].starts_with("done n=3 eval_us="));
        assert_eq!(replies.len(), 6);
    }

    #[test]
    fn bad_context_and_unknown_ids_are_reported_inline() {
        let replies = converse(&[
            "hello exec-wire v1",
            "context id=7 triple",
            "batch ctx=9 n=2",
            "item 1",
            "item 2",
            "shutdown",
        ]);
        assert!(replies[1].starts_with("error context id=7:"), "{replies:?}");
        assert_eq!(replies[2], "err unknown context id 9");
        assert_eq!(replies[3], "err unknown context id 9");
        assert!(replies[4].starts_with("done n=2"));
    }

    #[test]
    fn bad_handshake_ends_the_session() {
        let replies = converse(&["hello exec-wire v2", "context id=1 double"]);
        assert_eq!(replies.len(), 1);
        assert!(replies[0].starts_with("error unsupported handshake"));
    }

    #[test]
    fn eof_mid_batch_is_a_transport_error() {
        let mut input = Vec::new();
        write_frame(&mut input, "hello exec-wire v1").unwrap();
        write_frame(&mut input, "context id=1 double").unwrap();
        write_frame(&mut input, "batch ctx=1 n=3").unwrap();
        write_frame(&mut input, "item 1").unwrap();
        let mut output = Vec::new();
        let err = run_worker(&mut input.as_slice(), &mut output, &Doubler).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}

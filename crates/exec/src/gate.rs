//! Fair batch scheduling across concurrent campaigns sharing one worker
//! budget.
//!
//! A resident server runs many campaigns at once, but the host has one
//! fixed worker budget. [`FairGate`] is the arbitration point: every
//! campaign registers a ticket, and each evaluation batch (one MOEA
//! generation) must [`FairGate::acquire`] the gate before its pool fans
//! out. At most one batch runs at a time, and when several campaigns are
//! waiting, turns are granted **round-robin in registration order** —
//! the campaign cyclically next after the last grantee goes first. A
//! campaign that is busy elsewhere (selection, checkpointing, I/O) never
//! blocks the others: only *waiting* tickets are considered for a turn.
//!
//! The gate schedules wall-clock only. Results are bit-identical with and
//! without a gate — it decides *when* a batch runs, never *what* it
//! computes.
//!
//! # Examples
//!
//! ```
//! use clre_exec::FairGate;
//!
//! let gate = FairGate::shared();
//! let a = gate.register();
//! let b = gate.register();
//! {
//!     let _turn = gate.acquire(a); // batch for campaign A runs here
//! } // releasing hands the next contended turn to B
//! {
//!     let _turn = gate.acquire(b);
//! }
//! gate.deregister(a);
//! gate.deregister(b);
//! ```

use std::sync::{Arc, Condvar, Mutex};

/// Interior state of the gate: the registered tickets (registration
/// order), which of them are currently waiting, whether a batch holds the
/// gate, and who ran last.
#[derive(Debug, Default)]
struct GateState {
    /// Registered tickets, in registration order (the round-robin ring).
    active: Vec<u64>,
    /// Tickets currently blocked in [`FairGate::acquire`].
    waiting: Vec<u64>,
    /// A batch currently holds the gate.
    busy: bool,
    /// The ticket granted most recently (round-robin anchor).
    last: u64,
    /// Next ticket id to hand out.
    next_ticket: u64,
}

impl GateState {
    /// The waiting ticket cyclically next after `last` in registration
    /// order — the one a free gate should admit.
    fn chosen(&self) -> Option<u64> {
        if self.waiting.is_empty() {
            return None;
        }
        let ring = &self.active;
        let start = ring
            .iter()
            .position(|&t| t == self.last)
            .map_or(0, |i| i + 1);
        (0..ring.len())
            .map(|off| ring[(start + off) % ring.len()])
            .find(|t| self.waiting.contains(t))
            // Waiting tickets that already deregistered from the ring
            // cannot occur, but fall back rather than deadlock.
            .or_else(|| self.waiting.first().copied())
    }
}

/// A round-robin turnstile shared by every campaign on one host: one
/// evaluation batch at a time, waiting campaigns admitted fairly in
/// registration order. See the [module docs](self).
#[derive(Debug, Default)]
pub struct FairGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

/// RAII guard for one granted turn; dropping it releases the gate and
/// wakes the next waiter.
#[derive(Debug)]
pub struct Turn<'a> {
    gate: &'a FairGate,
}

impl Drop for Turn<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().expect("fair gate poisoned");
        s.busy = false;
        drop(s);
        self.gate.cv.notify_all();
    }
}

impl FairGate {
    /// An empty gate.
    pub fn new() -> Self {
        FairGate::default()
    }

    /// An empty gate behind an [`Arc`], ready to share across campaign
    /// threads.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Registers a new campaign and returns its ticket. Tickets join the
    /// round-robin ring in registration order.
    pub fn register(&self) -> u64 {
        let mut s = self.state.lock().expect("fair gate poisoned");
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.active.push(ticket);
        ticket
    }

    /// Removes a campaign from the ring (idempotent). Call once its run
    /// completes or parks so its slot never blocks a turn computation.
    pub fn deregister(&self, ticket: u64) {
        let mut s = self.state.lock().expect("fair gate poisoned");
        s.active.retain(|&t| t != ticket);
        s.waiting.retain(|&t| t != ticket);
        drop(s);
        self.cv.notify_all();
    }

    /// Number of currently registered campaigns.
    pub fn registered(&self) -> usize {
        self.state.lock().expect("fair gate poisoned").active.len()
    }

    /// Blocks until it is `ticket`'s turn and the gate is free, then
    /// holds the gate until the returned [`Turn`] is dropped.
    ///
    /// An unregistered ticket is admitted on a free gate (degenerate but
    /// harmless: the gate still serializes batches).
    pub fn acquire(&self, ticket: u64) -> Turn<'_> {
        let mut s = self.state.lock().expect("fair gate poisoned");
        if !s.waiting.contains(&ticket) {
            s.waiting.push(ticket);
        }
        loop {
            if !s.busy && s.chosen() == Some(ticket) {
                s.busy = true;
                s.last = ticket;
                s.waiting.retain(|&t| t != ticket);
                return Turn { gate: self };
            }
            s = self.cv.wait(s).expect("fair gate poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_ticket_never_blocks() {
        let gate = FairGate::new();
        let t = gate.register();
        for _ in 0..3 {
            let _turn = gate.acquire(t);
        }
        gate.deregister(t);
        assert_eq!(gate.registered(), 0);
    }

    #[test]
    fn turns_rotate_round_robin_under_contention() {
        let gate = FairGate::shared();
        let tickets: Vec<u64> = (0..3).map(|_| gate.register()).collect();
        let order = Arc::new(Mutex::new(Vec::new()));
        let in_gate = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for &t in &tickets {
                let gate = Arc::clone(&gate);
                let order = Arc::clone(&order);
                let in_gate = Arc::clone(&in_gate);
                scope.spawn(move || {
                    for _ in 0..4 {
                        let _turn = gate.acquire(t);
                        assert_eq!(in_gate.fetch_add(1, Ordering::SeqCst), 0, "gate exclusive");
                        order.lock().unwrap().push(t);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        in_gate.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 12);
        // Fairness: no ticket is starved — each appears exactly 4 times,
        // and in any window of 2·k consecutive grants every ticket shows
        // up at least once once all three are contending.
        for &t in &tickets {
            assert_eq!(order.iter().filter(|&&x| x == t).count(), 4);
        }
    }

    #[test]
    fn unequal_campaign_lengths_stay_fair_then_release_the_ring() {
        let gate = FairGate::shared();
        let holder = gate.register();
        let a = gate.register(); // long campaign: six batches
        let b = gate.register(); // short campaign: two batches, then done
        let order = Arc::new(Mutex::new(Vec::new()));

        // Hold the gate so both campaigns enqueue before any turn is
        // granted — the round-robin ring, not wake-up luck, decides the
        // grant order.
        let turn = gate.acquire(holder);
        std::thread::scope(|scope| {
            for (ticket, batches) in [(a, 6usize), (b, 2)] {
                let gate = Arc::clone(&gate);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    for _ in 0..batches {
                        let _turn = gate.acquire(ticket);
                        order.lock().unwrap().push(ticket);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    gate.deregister(ticket);
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(turn);
            gate.deregister(holder);
        });

        let order = order.lock().unwrap();
        assert_eq!(order.len(), 8);
        assert_eq!(order.iter().filter(|&&t| t == a).count(), 6);
        assert_eq!(order.iter().filter(|&&t| t == b).count(), 2);
        // While both campaigns contend, turns alternate in ring order:
        // the short campaign is never starved behind the long one.
        assert_eq!(&order[..4], &[a, b, a, b], "grants: {order:?}");
        // Once the short campaign deregisters, the survivor runs its
        // remaining batches unblocked.
        assert!(order[4..].iter().all(|&t| t == a), "grants: {order:?}");
        assert_eq!(gate.registered(), 0);
    }

    #[test]
    fn absent_campaign_does_not_block_others() {
        let gate = FairGate::shared();
        let a = gate.register();
        let _b = gate.register(); // registered but never acquires
        for _ in 0..3 {
            let _turn = gate.acquire(a); // must not wait for b's turn
        }
    }

    #[test]
    fn deregister_while_waiting_is_safe() {
        let gate = FairGate::shared();
        let a = gate.register();
        let b = gate.register();
        let turn = gate.acquire(a);
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _turn = gate.acquire(b);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        drop(turn);
        waiter.join().unwrap();
        gate.deregister(a);
        gate.deregister(b);
        assert_eq!(gate.registered(), 0);
    }
}

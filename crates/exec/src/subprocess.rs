//! The subprocess evaluation backend: a pool of `clre-exec-worker`
//! children speaking `exec-wire v1` over stdin/stdout.
//!
//! Each batch is split into contiguous per-worker chunks (deterministic
//! in the item indices — see [`chunk_bounds`]), streamed to the
//! children concurrently, and merged back by index, so the output slots
//! are identical to an in-process evaluation of the same items. A
//! worker that dies mid-batch is respawned once and its whole chunk
//! re-sent; a chunk that still cannot complete comes back as per-item
//! `Err` slots, which the caller resolves by evaluating those items
//! in-process — either way the merged results are bit-identical.
//!
//! Workers are spawned lazily on the first batch and told `shutdown` on
//! drop. Respawned workers are started with the backend's sticky env
//! vars removed: the vars exist to inject deterministic faults
//! (`CLRE_EXEC_WORKER_DIE_AFTER`) into the *first* generation of
//! workers in tests, and a replacement must be healthy.
//!
//! [`chunk_bounds`]: self

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::Mutex;
use std::time::Instant;

use crate::backend::{
    batch_stats, chunk_bounds, duration_nanos, BackendError, BackendHealth, EncodedBatch,
    EvalBackend,
};
use crate::wire::{read_frame, write_frame, EXEC_WIRE_VERSION};

/// Environment variable naming the worker executable, consulted by
/// [`SubprocessBackend::default_command`] before falling back to a
/// sibling of the current executable.
pub const WORKER_PATH_ENV: &str = "CLRE_EXEC_WORKER";

/// One chunk's outputs plus its `(lost, restarted)` worker counts.
type ChunkOutcome = (Vec<Result<String, String>>, usize, usize);

/// One live child process plus its per-worker context table.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    /// Context text → the id this worker knows it under.
    contexts: HashMap<String, u64>,
    next_context: u64,
}

impl Worker {
    fn shutdown(mut self) {
        let _ = write_frame(&mut self.stdin, "shutdown");
        drop(self.stdin);
        let _ = self.child.wait();
    }
}

#[derive(Default)]
struct PoolState {
    workers: Vec<Option<Worker>>,
    lost: usize,
    restarts: usize,
    batches: u64,
    items: u64,
}

/// The `exec-wire v1` parent: spawns and supervises a fixed pool of
/// worker processes and implements [`EvalBackend`] over them. See the
/// [module docs](self) for the recovery and determinism story.
pub struct SubprocessBackend {
    command: PathBuf,
    workers: usize,
    /// Extra env vars for the *initial* worker generation (removed on
    /// respawn) — the deterministic fault-injection hook for tests.
    sticky_env: Vec<(String, String)>,
    state: Mutex<PoolState>,
}

impl std::fmt::Debug for SubprocessBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubprocessBackend")
            .field("command", &self.command)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl SubprocessBackend {
    /// A backend running `workers` children of `command` (clamped to at
    /// least 1). Children are spawned lazily on the first batch.
    pub fn new(command: impl Into<PathBuf>, workers: usize) -> Self {
        let workers = workers.max(1);
        SubprocessBackend {
            command: command.into(),
            workers,
            sticky_env: Vec::new(),
            state: Mutex::new(PoolState {
                workers: (0..workers).map(|_| None).collect(),
                ..PoolState::default()
            }),
        }
    }

    /// Adds an env var passed to the initial worker generation only —
    /// respawned replacements start without it. Used by tests to make
    /// the first generation die deterministically
    /// (`CLRE_EXEC_WORKER_DIE_AFTER=<k>`).
    #[must_use]
    pub fn with_sticky_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.sticky_env.push((key.into(), value.into()));
        self
    }

    /// The worker executable this backend launches.
    pub fn command(&self) -> &Path {
        &self.command
    }

    /// The conventional worker-executable location: `$CLRE_EXEC_WORKER`
    /// if set, else `clre-exec-worker` next to the current executable
    /// (all workspace binaries land in the same target directory), else
    /// `None`.
    pub fn default_command() -> Option<PathBuf> {
        if let Some(path) = std::env::var_os(WORKER_PATH_ENV) {
            return Some(PathBuf::from(path));
        }
        let sibling = std::env::current_exe()
            .ok()?
            .parent()?
            .join("clre-exec-worker");
        sibling.exists().then_some(sibling)
    }

    fn spawn_worker(&self, clean: bool) -> Result<Worker, BackendError> {
        let mut command = Command::new(&self.command);
        command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (key, value) in &self.sticky_env {
            if clean {
                command.env_remove(key);
            } else {
                command.env(key, value);
            }
        }
        let mut child = command
            .spawn()
            .map_err(|e| BackendError::new(format!("spawn {}: {e}", self.command.display())))?;
        let mut stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let handshake = (|| -> io::Result<bool> {
            write_frame(&mut stdin, &format!("hello {EXEC_WIRE_VERSION}"))?;
            Ok(read_frame(&mut stdout)? == Some(format!("hello {EXEC_WIRE_VERSION}")))
        })();
        match handshake {
            Ok(true) => Ok(Worker {
                child,
                stdin,
                stdout,
                contexts: HashMap::new(),
                next_context: 0,
            }),
            other => {
                let _ = child.kill();
                let _ = child.wait();
                Err(BackendError::new(match other {
                    Ok(false) => "worker handshake mismatch".to_owned(),
                    Err(e) => format!("worker handshake: {e}"),
                    Ok(true) => unreachable!(),
                }))
            }
        }
    }

    /// Sends `context` (registering it first if this worker has not
    /// seen it) and the chunk's items, and reads the outputs back.
    fn run_chunk(
        worker: &mut Worker,
        context: &str,
        items: &[String],
    ) -> io::Result<Vec<Result<String, String>>> {
        let ctx = match worker.contexts.get(context) {
            Some(&id) => id,
            None => {
                let id = worker.next_context;
                worker.next_context += 1;
                write_frame(&mut worker.stdin, &format!("context id={id} {context}"))?;
                match read_frame(&mut worker.stdout)? {
                    Some(ready) if ready == format!("ready id={id}") => {}
                    Some(other) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("context rejected: {other}"),
                        ))
                    }
                    None => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "worker closed during context registration",
                        ))
                    }
                }
                worker.contexts.insert(context.to_owned(), id);
                id
            }
        };
        write_frame(
            &mut worker.stdin,
            &format!("batch ctx={ctx} n={}", items.len()),
        )?;
        for item in items {
            write_frame(&mut worker.stdin, &format!("item {item}"))?;
        }
        let mut outputs = Vec::with_capacity(items.len());
        for _ in 0..items.len() {
            match read_frame(&mut worker.stdout)? {
                Some(frame) => {
                    if let Some(ok) = frame.strip_prefix("ok ") {
                        outputs.push(Ok(ok.to_owned()));
                    } else if let Some(err) = frame.strip_prefix("err ") {
                        outputs.push(Err(err.to_owned()));
                    } else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("expected output frame, got {frame:?}"),
                        ));
                    }
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "worker died mid-batch",
                    ))
                }
            }
        }
        match read_frame(&mut worker.stdout)? {
            Some(done) if done.starts_with("done ") => Ok(outputs),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected done frame, got {other:?}"),
            )),
        }
    }

    /// One chunk, with single-respawn recovery: a transport failure
    /// kills the worker, a clean replacement re-runs the whole chunk
    /// (the evaluator is pure, so the re-run is bit-identical). Returns
    /// the outputs plus `(lost, restarted)` worker counts.
    fn chunk_with_recovery(
        &self,
        slot: &mut Option<Worker>,
        context: &str,
        items: &[String],
    ) -> ChunkOutcome {
        for attempt in 0..2 {
            if slot.is_none() {
                match self.spawn_worker(attempt > 0) {
                    Ok(worker) => *slot = Some(worker),
                    Err(e) => {
                        let failure = format!("worker unavailable: {e}");
                        return (items.iter().map(|_| Err(failure.clone())).collect(), 0, 0);
                    }
                }
            }
            let worker = slot.as_mut().expect("worker just ensured");
            match Self::run_chunk(worker, context, items) {
                Ok(outputs) => return (outputs, attempt, attempt),
                Err(_) => {
                    // The stream is out of lockstep (or the process is
                    // gone): discard and retry once on a clean respawn.
                    if let Some(dead) = slot.take() {
                        let mut dead = dead;
                        let _ = dead.child.kill();
                        let _ = dead.child.wait();
                    }
                }
            }
        }
        let failure = "worker lost twice; evaluating in-process".to_owned();
        (items.iter().map(|_| Err(failure.clone())).collect(), 2, 1)
    }
}

impl EvalBackend for SubprocessBackend {
    fn name(&self) -> &'static str {
        "subprocess"
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn evaluate_encoded(
        &self,
        context: &str,
        items: &[String],
    ) -> Result<EncodedBatch, BackendError> {
        let start = Instant::now();
        let mut state = self.state.lock().expect("subprocess pool poisoned");
        let bounds = chunk_bounds(items.len(), self.workers);
        // Move the workers out of their slots so chunks can run
        // concurrently without holding the pool lock across I/O.
        let mut slots: Vec<Option<Worker>> = state
            .workers
            .iter_mut()
            .take(bounds.len().max(1))
            .map(Option::take)
            .collect();
        let chunk_results: Vec<ChunkOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = bounds
                .iter()
                .zip(slots.iter_mut())
                .map(|(&(lo, hi), slot)| {
                    scope.spawn(move || self.chunk_with_recovery(slot, context, &items[lo..hi]))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        for (i, slot) in slots.into_iter().enumerate() {
            state.workers[i] = slot;
        }
        let mut outputs = Vec::with_capacity(items.len());
        let mut per_worker = Vec::with_capacity(chunk_results.len());
        let mut deaths = 0;
        for (chunk, lost, restarts) in chunk_results {
            per_worker.push(chunk.len());
            outputs.extend(chunk);
            deaths += lost;
            state.lost += lost;
            state.restarts += restarts;
        }
        state.batches += 1;
        state.items += items.len() as u64;
        Ok(EncodedBatch {
            outputs,
            stats: batch_stats(duration_nanos(start), per_worker, deaths),
        })
    }

    fn health(&self) -> BackendHealth {
        let state = self.state.lock().expect("subprocess pool poisoned");
        BackendHealth {
            workers: self.workers,
            alive: state.workers.iter().filter(|w| w.is_some()).count(),
            lost: state.lost,
            restarts: state.restarts,
            batches: state.batches,
            items: state.items,
        }
    }

    fn flush_telemetry(&self) {}
}

impl Drop for SubprocessBackend {
    fn drop(&mut self) {
        let mut state = self.state.lock().expect("subprocess pool poisoned");
        for slot in &mut state.workers {
            if let Some(worker) = slot.take() {
                worker.shutdown();
            }
        }
    }
}

// Integration coverage (real child processes, worker kills, digest
// parity with the in-process path) lives in `crates/core/tests/`, where
// the `clre-exec-worker` binary and the DSE vocabulary are in scope.

//! Run telemetry: per-generation trace records and the [`Executor`] that
//! produces them.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::backend::EvalBackend;
use crate::gate::FairGate;
use crate::histogram::LatencyHistogram;
use crate::pool::{ExecPool, ExecStats};

/// Shared handle to a [`RunTelemetry`], passed into an [`Executor`] and
/// read back by the driver after (or during) the run.
pub type TelemetrySink = Arc<Mutex<RunTelemetry>>;

/// One evaluation batch (one MOEA generation, or the initial-population
/// evaluation as step 0) as recorded by an [`Executor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationTrace {
    /// Phase label of the executor that ran the batch (e.g.
    /// `"proposed/fc-stage"`).
    pub phase: String,
    /// Step index within the phase: 0 for the initial population, then
    /// the generation number.
    pub step: usize,
    /// Number of candidates evaluated.
    pub batch: usize,
    /// Wall-clock nanoseconds spent on the batch.
    pub wall_nanos: u64,
    /// Configured worker count of the pool.
    pub workers: usize,
    /// Candidates evaluated per worker (length = workers spawned).
    pub per_worker: Vec<usize>,
    /// Per-evaluation latency histogram of the batch.
    pub histogram: LatencyHistogram,
    /// Cumulative quarantined-candidate count at the end of this batch,
    /// as reported by the resilient runtime (0 when unsupervised).
    pub quarantined: usize,
    /// Cumulative degraded-mode analysis count at the end of this batch
    /// (0 when unsupervised).
    pub degraded: usize,
    /// Cumulative fitness-cache hits at the end of this batch (0 when no
    /// evaluation cache is attached).
    pub cache_hits: u64,
    /// Cumulative fitness-cache misses at the end of this batch.
    pub cache_misses: u64,
    /// Microseconds the driving thread spent in the selection kernels
    /// (non-dominated sort, crowding/density, truncation) for the
    /// generation this batch belongs to (0 when the MOEA layer does not
    /// report it, e.g. for the initial-population batch).
    pub selection_us: u64,
    /// Cumulative deadline-timeout count at the end of this batch, as
    /// reported by the resilient runtime (0 when unsupervised).
    pub timeouts: usize,
    /// Cumulative milliseconds of deterministic retry backoff slept.
    pub backoff_ms: u64,
    /// Cumulative injected-fault count (0 outside chaos runs).
    pub injected: usize,
    /// Cumulative recovered-evaluation count (failed at least once, then
    /// succeeded on a retry).
    pub recovered: usize,
    /// Workers lost (and recovered from) in this batch alone — per-batch,
    /// straight from [`ExecStats::worker_deaths`], unlike the cumulative
    /// counters above.
    pub worker_deaths: usize,
    /// Microseconds of `selection_us` spent ranking/fitness-sorting
    /// (SPEA2 fitness, NSGA-II rank-and-crowd). Trailing trace-v1 token;
    /// 0 when the MOEA layer does not report a split.
    pub sort_us: u64,
    /// Microseconds of `selection_us` spent in environmental truncation.
    pub truncate_us: u64,
    /// Microseconds of `selection_us` spent building/updating/compacting
    /// the pairwise distance matrix (0 for NSGA-II).
    pub dist_us: u64,
}

impl GenerationTrace {
    /// The machine-readable one-line form of this record.
    ///
    /// Format (space-separated `key=value`, `|`-separated lists):
    ///
    /// ```text
    /// trace-v1 phase=<label> step=<n> batch=<n> eval_us=<n> workers=<n> \
    ///     per_worker=<c0|c1|…> hist=<b0|b1|…> quarantined=<n> degraded=<n> \
    ///     cache_hits=<n> cache_misses=<n> selection_us=<n> timeouts=<n> \
    ///     backoff_ms=<n> injected=<n> recovered=<n> worker_deaths=<n> \
    ///     sort_us=<n> truncate_us=<n> dist_us=<n>
    /// ```
    ///
    /// `sort_us`/`truncate_us`/`dist_us` — the `selection_us` split — are
    /// trailing tokens appended after the original trace-v1 fields, so
    /// parsers written before they existed keep working unchanged.
    pub fn line(&self) -> String {
        let per_worker = if self.per_worker.is_empty() {
            "-".to_owned()
        } else {
            self.per_worker
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join("|")
        };
        format!(
            "trace-v1 phase={} step={} batch={} eval_us={} workers={} per_worker={} hist={} quarantined={} degraded={} cache_hits={} cache_misses={} selection_us={} timeouts={} backoff_ms={} injected={} recovered={} worker_deaths={} sort_us={} truncate_us={} dist_us={}",
            self.phase,
            self.step,
            self.batch,
            self.wall_nanos / 1_000,
            self.workers,
            per_worker,
            self.histogram.compact(),
            self.quarantined,
            self.degraded,
            self.cache_hits,
            self.cache_misses,
            self.selection_us,
            self.timeouts,
            self.backoff_ms,
            self.injected,
            self.recovered,
            self.worker_deaths,
            self.sort_us,
            self.truncate_us,
            self.dist_us,
        )
    }
}

/// The run-level telemetry accumulator: an append-only list of
/// [`GenerationTrace`] records plus run totals.
///
/// Create one with [`RunTelemetry::sink`], attach the sink to every
/// [`Executor`] involved in the run, and read the trace back when done.
/// Telemetry never influences results: a run with and without a sink is
/// bit-identical.
///
/// For live consumers (a trace file tailed mid-run, a server streaming
/// generations over a socket) attach a line stream with
/// [`RunTelemetry::stream_to`]: every [`RunTelemetry::flush_pending`]
/// call writes the not-yet-streamed records as finalized `trace-v1` lines
/// and flushes the writer, so a line is visible the moment its generation
/// (and its post-batch annotations) completes — never parked in a buffer
/// until run end.
#[derive(Default)]
pub struct RunTelemetry {
    records: Vec<GenerationTrace>,
    /// Per-generation line stream; `None` keeps the store purely
    /// in-memory.
    stream: Option<Box<dyn io::Write + Send>>,
    /// Records already written to the stream (`records[..streamed]`).
    streamed: usize,
}

impl std::fmt::Debug for RunTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunTelemetry")
            .field("records", &self.records)
            .field("streaming", &self.stream.is_some())
            .field("streamed", &self.streamed)
            .finish()
    }
}

impl Clone for RunTelemetry {
    /// Clones the records only: a line stream is an exclusive I/O
    /// resource and stays with the original.
    fn clone(&self) -> Self {
        RunTelemetry {
            records: self.records.clone(),
            stream: None,
            streamed: 0,
        }
    }
}

impl PartialEq for RunTelemetry {
    /// Telemetry equality is record equality; the stream is plumbing.
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl Eq for RunTelemetry {}

impl RunTelemetry {
    /// An empty telemetry store.
    pub fn new() -> Self {
        RunTelemetry::default()
    }

    /// An empty telemetry store behind a shared sink handle.
    pub fn sink() -> TelemetrySink {
        Arc::new(Mutex::new(RunTelemetry::new()))
    }

    /// Appends a record.
    pub fn record(&mut self, record: GenerationTrace) {
        self.records.push(record);
    }

    /// Updates the newest record's cumulative quarantine/degraded-mode
    /// counters (the resilient runtime learns them only after the batch
    /// returns). No-op on an empty store.
    pub fn annotate_last(&mut self, quarantined: usize, degraded: usize) {
        if let Some(last) = self.records.last_mut() {
            last.quarantined = quarantined;
            last.degraded = degraded;
        }
    }

    /// Updates the newest record's cumulative evaluation-cache counters
    /// (stamped after the batch, like [`RunTelemetry::annotate_last`]).
    /// No-op on an empty store.
    pub fn annotate_cache_last(&mut self, hits: u64, misses: u64) {
        if let Some(last) = self.records.last_mut() {
            last.cache_hits = hits;
            last.cache_misses = misses;
        }
    }

    /// Updates the newest record's selection-kernel timing (the MOEA
    /// layer measures it on the driving thread and reports it after the
    /// generation's batch is recorded). No-op on an empty store.
    pub fn annotate_selection_last(&mut self, micros: u64) {
        if let Some(last) = self.records.last_mut() {
            last.selection_us = micros;
        }
    }

    /// Updates the newest record's selection timing including the
    /// sort/truncate/distance split ([`RunTelemetry::annotate_selection_last`]
    /// plus the three trailing trace-v1 tokens). No-op on an empty store.
    pub fn annotate_selection_split_last(
        &mut self,
        total_us: u64,
        sort_us: u64,
        truncate_us: u64,
        dist_us: u64,
    ) {
        if let Some(last) = self.records.last_mut() {
            last.selection_us = total_us;
            last.sort_us = sort_us;
            last.truncate_us = truncate_us;
            last.dist_us = dist_us;
        }
    }

    /// Updates the newest record's cumulative fault/recovery counters
    /// (stamped after the batch, like the other annotations). No-op on an
    /// empty store.
    pub fn annotate_faults_last(
        &mut self,
        timeouts: usize,
        backoff_ms: u64,
        injected: usize,
        recovered: usize,
    ) {
        if let Some(last) = self.records.last_mut() {
            last.timeouts = timeouts;
            last.backoff_ms = backoff_ms;
            last.injected = injected;
            last.recovered = recovered;
        }
    }

    /// Attaches a live line stream: every [`RunTelemetry::flush_pending`]
    /// writes the records finalized since the last flush as `trace-v1`
    /// lines and flushes the writer. Records appended before this call
    /// are considered already consumed (an attach mid-run streams the
    /// future, not the past — the past is in [`RunTelemetry::records`]).
    pub fn stream_to(&mut self, writer: Box<dyn io::Write + Send>) {
        self.streamed = self.records.len();
        self.stream = Some(writer);
    }

    /// Writes every not-yet-streamed record to the attached stream as one
    /// `trace-v1` line each and flushes the writer — the per-generation
    /// flush that keeps a socket or tailed file live. No-op without a
    /// stream. A write failure detaches the stream (the consumer hung
    /// up); telemetry accumulation continues unaffected.
    pub fn flush_pending(&mut self) {
        let Some(writer) = self.stream.as_mut() else {
            return;
        };
        let mut ok = true;
        while self.streamed < self.records.len() {
            let line = self.records[self.streamed].line();
            if writeln!(writer, "{line}").is_err() {
                ok = false;
                break;
            }
            self.streamed += 1;
        }
        if ok {
            ok = writer.flush().is_ok();
        }
        if !ok {
            self.stream = None;
        }
    }

    /// Whether a live line stream is currently attached.
    pub fn is_streaming(&self) -> bool {
        self.stream.is_some()
    }

    /// All records, in execution order.
    pub fn records(&self) -> &[GenerationTrace] {
        &self.records
    }

    /// Total candidates evaluated across all records.
    pub fn total_evaluations(&self) -> usize {
        self.records.iter().map(|r| r.batch).sum()
    }

    /// Total wall-clock nanoseconds spent evaluating, summed over
    /// batches.
    pub fn total_wall_nanos(&self) -> u64 {
        self.records.iter().map(|r| r.wall_nanos).sum()
    }

    /// Wall-clock nanoseconds per phase label, in first-seen order.
    pub fn per_phase_wall_nanos(&self) -> Vec<(String, u64)> {
        let mut phases: Vec<(String, u64)> = Vec::new();
        for r in &self.records {
            match phases.iter_mut().find(|(p, _)| *p == r.phase) {
                Some((_, nanos)) => *nanos += r.wall_nanos,
                None => phases.push((r.phase.clone(), r.wall_nanos)),
            }
        }
        phases
    }

    /// The machine-readable trace: one line per record plus a trailing
    /// `totals` line.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{}", r.line());
        }
        let _ = writeln!(
            out,
            "trace-v1 totals records={} evaluations={} eval_us={}",
            self.records.len(),
            self.total_evaluations(),
            self.total_wall_nanos() / 1_000,
        );
        out
    }

    /// Writes [`RunTelemetry::trace`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.trace())
    }
}

/// An [`ExecPool`] bound to a phase label and an optional
/// [`TelemetrySink`] — the handle the MOEA layer drives batches through.
///
/// Cloning is cheap (the sink is shared); [`Executor::with_label`]
/// re-labels a clone so one run-wide executor can be specialized per
/// stage.
#[derive(Debug, Clone)]
pub struct Executor {
    pool: ExecPool,
    label: String,
    sink: Option<TelemetrySink>,
    gate: Option<(Arc<FairGate>, u64)>,
    backend: Option<Arc<dyn EvalBackend>>,
}

impl Executor {
    /// A serial executor with no telemetry — the default everywhere an
    /// executor is optional.
    pub fn serial() -> Self {
        Executor::new(ExecPool::serial())
    }

    /// An executor over the given pool, unlabeled and without telemetry.
    pub fn new(pool: ExecPool) -> Self {
        Executor {
            pool,
            label: String::new(),
            sink: None,
            gate: None,
            backend: None,
        }
    }

    /// Sets the phase label stamped on every trace record (builder
    /// style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Attaches a telemetry sink (builder style).
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a [`FairGate`] turn `ticket` (builder style): every batch
    /// this executor evaluates first acquires the gate, so concurrent
    /// campaigns sharing one worker budget interleave fairly at
    /// generation granularity. Scheduling only — results are identical
    /// with and without a gate.
    #[must_use]
    pub fn with_gate(mut self, gate: Arc<FairGate>, ticket: u64) -> Self {
        self.gate = Some((gate, ticket));
        self
    }

    /// Attaches an [`EvalBackend`] (builder style): callers that can
    /// express their evaluation as encoded strings route batches through
    /// [`Executor::evaluate_encoded`], which runs them on this backend —
    /// threads or subprocesses, same results — instead of the in-process
    /// pool. Callers that cannot keep using [`Executor::evaluate_batch`].
    #[must_use]
    pub fn with_eval_backend(mut self, backend: Arc<dyn EvalBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The attached evaluation backend, if any.
    pub fn eval_backend(&self) -> Option<&Arc<dyn EvalBackend>> {
        self.backend.as_ref()
    }

    /// Evaluates one encoded batch on the attached [`EvalBackend`],
    /// recording a [`GenerationTrace`] and honoring the fair-share gate
    /// exactly like [`Executor::evaluate_batch`].
    ///
    /// Returns `None` when no backend is attached or the backend fails
    /// the whole batch (e.g. the context does not resolve remotely) —
    /// the caller falls back to in-process evaluation, which keeps
    /// results identical either way. Per-item `Err` slots are returned
    /// as-is for per-item fallback.
    pub fn evaluate_encoded(
        &self,
        step: usize,
        context: &str,
        items: &[String],
    ) -> Option<Vec<Result<String, String>>> {
        let backend = self.backend.as_ref()?;
        let batch = match &self.gate {
            Some((gate, ticket)) => {
                let _turn = gate.acquire(*ticket);
                backend.evaluate_encoded(context, items)
            }
            None => backend.evaluate_encoded(context, items),
        };
        let batch = batch.ok()?;
        self.record(step, items.len(), batch.stats);
        Some(batch.outputs)
    }

    /// The underlying pool.
    pub fn pool(&self) -> ExecPool {
        self.pool
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The phase label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&TelemetrySink> {
        self.sink.as_ref()
    }

    /// Evaluates one batch through the pool and appends a
    /// [`GenerationTrace`] record (phase = this executor's label,
    /// step = `step`) to the sink, if one is attached.
    ///
    /// Results are bit-identical to serial order for any worker count;
    /// see [`ExecPool::evaluate_batch`].
    pub fn evaluate_batch<T, R, F>(&self, step: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let (results, stats) = match &self.gate {
            Some((gate, ticket)) => {
                let _turn = gate.acquire(*ticket);
                self.pool.evaluate_batch(items, f)
            }
            None => self.pool.evaluate_batch(items, f),
        };
        self.record(step, items.len(), stats);
        results
    }

    /// Flushes the sink's not-yet-streamed trace lines to its attached
    /// line stream (see [`RunTelemetry::flush_pending`]); no-op without a
    /// sink or stream. The supervised campaign loop calls this once per
    /// generation, after the post-batch annotations are stamped, so live
    /// consumers see each generation as it completes.
    pub fn flush_trace(&self) {
        if let Some(backend) = &self.backend {
            backend.flush_telemetry();
        }
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("telemetry sink poisoned")
                .flush_pending();
        }
    }

    /// Updates the newest trace record's quarantine/degraded counters;
    /// no-op without a sink.
    pub fn annotate_health(&self, quarantined: usize, degraded: usize) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("telemetry sink poisoned")
                .annotate_last(quarantined, degraded);
        }
    }

    /// Updates the newest trace record's cumulative evaluation-cache
    /// counters; no-op without a sink.
    pub fn annotate_cache(&self, hits: u64, misses: u64) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("telemetry sink poisoned")
                .annotate_cache_last(hits, misses);
        }
    }

    /// Updates the newest trace record's selection-kernel timing;
    /// no-op without a sink.
    pub fn annotate_selection(&self, micros: u64) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("telemetry sink poisoned")
                .annotate_selection_last(micros);
        }
    }

    /// Updates the newest trace record's selection timing plus its
    /// sort/truncate/distance split; no-op without a sink.
    pub fn annotate_selection_split(
        &self,
        total_us: u64,
        sort_us: u64,
        truncate_us: u64,
        dist_us: u64,
    ) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("telemetry sink poisoned")
                .annotate_selection_split_last(total_us, sort_us, truncate_us, dist_us);
        }
    }

    /// Updates the newest trace record's cumulative fault/recovery
    /// counters; no-op without a sink.
    pub fn annotate_faults(
        &self,
        timeouts: usize,
        backoff_ms: u64,
        injected: usize,
        recovered: usize,
    ) {
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("telemetry sink poisoned")
                .annotate_faults_last(timeouts, backoff_ms, injected, recovered);
        }
    }

    fn record(&self, step: usize, batch: usize, stats: ExecStats) {
        let Some(sink) = &self.sink else { return };
        sink.lock()
            .expect("telemetry sink poisoned")
            .record(GenerationTrace {
                phase: self.label.clone(),
                step,
                batch,
                wall_nanos: stats.wall_nanos,
                workers: self.pool.workers(),
                per_worker: stats.per_worker,
                histogram: stats.histogram,
                quarantined: 0,
                degraded: 0,
                cache_hits: 0,
                cache_misses: 0,
                selection_us: 0,
                timeouts: 0,
                backoff_ms: 0,
                injected: 0,
                recovered: 0,
                worker_deaths: stats.worker_deaths,
                sort_us: 0,
                truncate_us: 0,
                dist_us: 0,
            });
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::serial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_records_one_trace_per_batch() {
        let sink = RunTelemetry::sink();
        let exec = Executor::new(ExecPool::new(2))
            .with_label("stage-a")
            .with_telemetry(sink.clone());
        let items: Vec<u32> = (0..10).collect();
        let out = exec.evaluate_batch(0, &items, |x| x + 1);
        assert_eq!(out[9], 10);
        let _ = exec.evaluate_batch(1, &items, |x| x * 2);
        exec.annotate_health(3, 7);
        exec.annotate_cache(40, 12);
        exec.annotate_selection(55);
        exec.annotate_faults(2, 9, 5, 4);

        let t = sink.lock().unwrap();
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.total_evaluations(), 20);
        assert_eq!(t.records()[0].phase, "stage-a");
        assert_eq!(t.records()[0].step, 0);
        assert_eq!(t.records()[0].quarantined, 0);
        assert_eq!(t.records()[1].quarantined, 3);
        assert_eq!(t.records()[1].degraded, 7);
        assert_eq!(t.records()[0].cache_hits, 0);
        assert_eq!(t.records()[1].cache_hits, 40);
        assert_eq!(t.records()[1].cache_misses, 12);
        assert_eq!(t.records()[0].selection_us, 0);
        assert_eq!(t.records()[1].selection_us, 55);
        assert_eq!(t.records()[0].timeouts, 0);
        assert_eq!(t.records()[1].timeouts, 2);
        assert_eq!(t.records()[1].backoff_ms, 9);
        assert_eq!(t.records()[1].injected, 5);
        assert_eq!(t.records()[1].recovered, 4);
        assert_eq!(t.records()[1].worker_deaths, 0);
        assert_eq!(t.per_phase_wall_nanos().len(), 1);
    }

    #[test]
    fn trace_lines_are_machine_readable() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        let rec = GenerationTrace {
            phase: "pfCLR".into(),
            step: 12,
            batch: 32,
            wall_nanos: 5_250_000,
            workers: 4,
            per_worker: vec![8, 9, 8, 7],
            histogram: h,
            quarantined: 1,
            degraded: 2,
            cache_hits: 20,
            cache_misses: 12,
            selection_us: 830,
            timeouts: 3,
            backoff_ms: 41,
            injected: 6,
            recovered: 5,
            worker_deaths: 1,
            sort_us: 500,
            truncate_us: 200,
            dist_us: 90,
        };
        assert_eq!(
            rec.line(),
            "trace-v1 phase=pfCLR step=12 batch=32 eval_us=5250 workers=4 \
             per_worker=8|9|8|7 hist=1 quarantined=1 degraded=2 \
             cache_hits=20 cache_misses=12 selection_us=830 timeouts=3 \
             backoff_ms=41 injected=6 recovered=5 worker_deaths=1 \
             sort_us=500 truncate_us=200 dist_us=90"
        );
        let mut t = RunTelemetry::new();
        t.record(rec);
        let trace = t.trace();
        assert_eq!(trace.lines().count(), 2, "one record + totals");
        assert!(trace.ends_with("evaluations=32 eval_us=5250\n"));
    }

    #[test]
    fn selection_split_annotation_stamps_trailing_tokens() {
        let sink = RunTelemetry::sink();
        let exec = Executor::new(ExecPool::serial())
            .with_label("s")
            .with_telemetry(sink.clone());
        let _ = exec.evaluate_batch(1, &[1u8], |x| *x);
        exec.annotate_selection_split(830, 500, 200, 90);
        let t = sink.lock().unwrap();
        let r = &t.records()[0];
        assert_eq!(
            (r.selection_us, r.sort_us, r.truncate_us, r.dist_us),
            (830, 500, 200, 90)
        );
        assert!(r.line().ends_with("sort_us=500 truncate_us=200 dist_us=90"));
    }

    #[test]
    fn telemetry_without_sink_is_a_noop() {
        let exec = Executor::serial().with_label("x");
        let out = exec.evaluate_batch(0, &[1u8, 2, 3], |x| x * 3);
        assert_eq!(out, vec![3, 6, 9]);
        exec.annotate_health(9, 9);
        exec.annotate_cache(9, 9);
        exec.annotate_selection(9);
        assert!(exec.telemetry().is_none());
    }

    #[test]
    fn flush_pending_streams_finalized_lines_per_generation() {
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let sink = RunTelemetry::sink();
        sink.lock().unwrap().stream_to(Box::new(buf.clone()));
        let exec = Executor::new(ExecPool::serial())
            .with_label("live")
            .with_telemetry(sink.clone());

        let _ = exec.evaluate_batch(0, &[1u8, 2], |x| *x);
        exec.annotate_health(1, 0);
        assert!(buf.0.lock().unwrap().is_empty(), "nothing until flush");
        exec.flush_trace();
        let first = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(first.lines().count(), 1, "one finalized line");
        assert!(first.contains("step=0"));
        assert!(
            first.contains("quarantined=1"),
            "annotations stamped before the flush are in the streamed line"
        );

        let _ = exec.evaluate_batch(1, &[3u8], |x| *x);
        exec.flush_trace();
        exec.flush_trace(); // idempotent: nothing new to stream
        let both = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(both.lines().count(), 2);
        assert!(sink.lock().unwrap().is_streaming());
    }

    #[test]
    fn broken_stream_detaches_without_poisoning_telemetry() {
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut t = RunTelemetry::new();
        t.stream_to(Box::new(Broken));
        let mut h = LatencyHistogram::new();
        h.record(1);
        t.record(GenerationTrace {
            phase: "x".into(),
            step: 0,
            batch: 1,
            wall_nanos: 1,
            workers: 1,
            per_worker: vec![1],
            histogram: h,
            quarantined: 0,
            degraded: 0,
            cache_hits: 0,
            cache_misses: 0,
            selection_us: 0,
            timeouts: 0,
            backoff_ms: 0,
            injected: 0,
            recovered: 0,
            worker_deaths: 0,
            sort_us: 0,
            truncate_us: 0,
            dist_us: 0,
        });
        t.flush_pending();
        assert!(!t.is_streaming(), "dead consumer detached");
        assert_eq!(t.records().len(), 1, "records unaffected");
    }

    #[test]
    fn write_trace_roundtrips_through_disk() {
        let sink = RunTelemetry::sink();
        let exec = Executor::new(ExecPool::serial())
            .with_label("io")
            .with_telemetry(sink.clone());
        let _ = exec.evaluate_batch(0, &[1u32], |x| *x);
        let path = std::env::temp_dir().join(format!("clre-exec-trace-{}.txt", std::process::id()));
        sink.lock().unwrap().write_trace(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("trace-v1 phase=io step=0 batch=1"));
        assert!(text.contains("trace-v1 totals records=1 evaluations=1"));
        std::fs::remove_file(&path).unwrap();
    }
}

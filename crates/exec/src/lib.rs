//! `clre-exec` — deterministic parallel evaluation engine with built-in
//! run telemetry.
//!
//! The system-level DSE spends nearly all wall-clock in per-generation
//! offspring evaluation (Markov-chain solves plus schedule/QoS evaluation
//! per candidate), yet the MOEAs are generational: each generation is an
//! embarrassingly parallel batch of independent fitness evaluations whose
//! *results* must be consumed in a fixed order to keep runs reproducible.
//! This crate provides exactly that shape, on `std` alone (the build
//! environment vendors its few external dependencies, so no thread-pool
//! crate is assumed):
//!
//! * [`ExecPool`] — a fixed worker count plus
//!   [`ExecPool::evaluate_batch`]: fan a slice of items out over scoped
//!   threads (`std::thread::scope`) via an atomic work-stealing index and
//!   write each result into its item's pre-sized slot, so the merged
//!   output is **bit-identical to serial order** regardless of thread
//!   interleaving. One worker (or one item) short-circuits to a plain
//!   serial loop.
//! * [`Executor`] — an [`ExecPool`] bundled with a phase label and an
//!   optional [`TelemetrySink`]; the MOEA layer calls
//!   [`Executor::evaluate_batch`] once per generation and the executor
//!   times the batch, tallies per-worker candidate counts and a
//!   log-spaced evaluation-latency histogram, and appends one
//!   [`GenerationTrace`] record to the sink.
//! * [`EvalBackend`] — the one evaluation API from threads to
//!   processes: batches of opaque encoded items evaluated into pre-sized
//!   indexed slots, with worker health and telemetry reporting.
//!   [`ThreadBackend`] wraps the in-process pool; [`SubprocessBackend`]
//!   supervises a pool of `clre-exec-worker` children speaking the
//!   length-prefixed [`wire`] protocol (`exec-wire v1`), with the
//!   [`worker`] module providing the reusable child-side loop. The
//!   backend choice never changes results — only where they are
//!   computed.
//! * [`RunTelemetry`] — the observability layer: per-phase wall time,
//!   per-worker counts, latency [`LatencyHistogram`]s,
//!   quarantine/degraded-mode counters fed from the resilient runtime,
//!   and a machine-readable one-line-per-generation trace
//!   ([`RunTelemetry::trace`]) that `clre-bench` writes next to its
//!   reports.
//!
//! Determinism is the engine's core invariant: the *values* returned by
//! [`ExecPool::evaluate_batch`] depend only on the items and the
//! evaluation function, never on the worker count or scheduling. The
//! telemetry (timings, per-worker counts) is the only thing that varies
//! between runs, and it is kept strictly out of the result path.
//!
//! # Examples
//!
//! ```
//! use clre_exec::{ExecPool, Executor, RunTelemetry};
//!
//! let items: Vec<u64> = (0..100).collect();
//! let square = |x: &u64| x * x;
//!
//! // Results are bit-identical to the serial order for any worker count.
//! let (serial, _) = ExecPool::serial().evaluate_batch(&items, square);
//! let (parallel, stats) = ExecPool::new(4).evaluate_batch(&items, square);
//! assert_eq!(serial, parallel);
//! assert_eq!(stats.per_worker.iter().sum::<usize>(), items.len());
//!
//! // The Executor adds telemetry: one trace record per batch.
//! let sink = RunTelemetry::sink();
//! let exec = Executor::new(ExecPool::new(2))
//!     .with_label("demo")
//!     .with_telemetry(sink.clone());
//! let doubled = exec.evaluate_batch(0, &items, |x| 2 * x);
//! assert_eq!(doubled[99], 198);
//! let telemetry = sink.lock().unwrap();
//! assert_eq!(telemetry.records().len(), 1);
//! assert!(telemetry.trace().starts_with("trace-v1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod gate;
mod histogram;
mod pool;
mod subprocess;
mod telemetry;
pub mod wire;
pub mod worker;

pub use backend::{
    BackendError, BackendHealth, EncodedBatch, EvalBackend, EvalVocab, ItemEval, ThreadBackend,
};
pub use gate::{FairGate, Turn};
pub use histogram::LatencyHistogram;
pub use pool::{DeathPlan, ExecPool, ExecStats};
pub use subprocess::{SubprocessBackend, WORKER_PATH_ENV};
pub use telemetry::{Executor, GenerationTrace, RunTelemetry, TelemetrySink};

//! The deterministic batch-evaluation pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use crate::histogram::LatencyHistogram;

/// Observability record of one [`ExecPool::evaluate_batch`] call: wall
/// time, how the batch was split across workers, and the per-evaluation
/// latency distribution. Pure telemetry — nothing in here feeds back into
/// the evaluation results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Wall-clock duration of the whole batch, in nanoseconds.
    pub wall_nanos: u64,
    /// Candidates evaluated by each worker, indexed by worker id. Length
    /// is the number of workers actually spawned (1 for the serial path).
    pub per_worker: Vec<usize>,
    /// Log-spaced per-evaluation latency histogram over the batch.
    pub histogram: LatencyHistogram,
    /// Workers that died mid-batch (simulated by an attached
    /// [`DeathPlan`]) and whose unfinished items were re-evaluated by the
    /// recovery pass. Zero without a plan.
    pub worker_deaths: usize,
}

/// Deterministic worker-death schedule for [`ExecPool::evaluate_batch`].
///
/// Death decisions are keyed on the *item index*, never on which worker
/// claims the item or in what order, so the set of death-triggering items
/// — and therefore [`ExecStats::worker_deaths`] — is identical across
/// reruns and thread interleavings: `min(workers, triggering items)`
/// workers die per batch. The evaluator is a pure function, so the
/// recovery pass reproduces every lost result bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeathPlan {
    /// Salt for the per-item death decision.
    pub seed: u64,
    /// Per-item death probability in parts-per-million.
    pub rate_ppm: u32,
}

impl DeathPlan {
    /// A plan killing the claiming worker on `rate_ppm` of item indices.
    pub fn new(seed: u64, rate_ppm: u32) -> Self {
        DeathPlan { seed, rate_ppm }
    }

    /// Whether claiming item `index` kills the worker (pure in
    /// `(seed, index)`).
    pub fn fires(&self, index: usize) -> bool {
        // FNV-1a over seed ‖ index, little-endian.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for byte in self
            .seed
            .to_le_bytes()
            .into_iter()
            .chain(u64::try_from(index).unwrap_or(u64::MAX).to_le_bytes())
        {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h % 1_000_000 < u64::from(self.rate_ppm)
    }
}

/// A fixed-size evaluation worker pool.
///
/// The pool holds no threads between batches: each
/// [`ExecPool::evaluate_batch`] call opens a `std::thread::scope`, fans
/// the items out over `workers` scoped threads through an atomic
/// work-stealing index, and joins them before returning. That keeps the
/// engine dependency-free and the borrow story trivial (workers may
/// borrow the items and the evaluator directly), at a per-batch cost of a
/// few thread spawns — noise next to the Markov-chain solves that
/// dominate a DSE generation.
///
/// **Determinism invariant:** every item's result is written into the
/// item's own index in a pre-sized buffer, and the buffer is drained in
/// index order after all workers joined. The returned `Vec` is therefore
/// bit-identical to what a serial loop over `items` would produce, for
/// any worker count and any thread interleaving. Only [`ExecStats`]
/// varies between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPool {
    workers: usize,
    death: Option<DeathPlan>,
}

impl ExecPool {
    /// A pool with exactly one worker: evaluation runs inline on the
    /// calling thread.
    pub fn serial() -> Self {
        ExecPool {
            workers: 1,
            death: None,
        }
    }

    /// A pool with `workers` workers (at least 1; `0` is clamped to 1).
    pub fn new(workers: usize) -> Self {
        ExecPool {
            workers: workers.max(1),
            death: None,
        }
    }

    /// Attaches a deterministic worker-death plan (builder style): a
    /// worker that claims a death-triggering item dies on the spot
    /// instead of evaluating it, and the post-join recovery pass
    /// re-evaluates every unfinished item inline. Results stay
    /// bit-identical to the plan-free pool; only [`ExecStats`] shows the
    /// carnage. The serial path never dies (there is no worker to lose).
    #[must_use]
    pub fn with_death_plan(mut self, plan: DeathPlan) -> Self {
        self.death = Some(plan);
        self
    }

    /// A pool sized to `std::thread::available_parallelism` (1 if the
    /// hardware parallelism cannot be determined).
    pub fn auto() -> Self {
        ExecPool::new(thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates `f` over every item, returning the results in item order
    /// plus the batch's [`ExecStats`].
    ///
    /// With one worker (or at most one item) this is a plain serial loop;
    /// otherwise the items are pulled by `min(workers, items.len())`
    /// scoped threads off a shared atomic cursor. A panicking evaluation
    /// propagates out of this call in both modes (the resilient runtime
    /// wraps evaluators that should not unwind).
    pub fn evaluate_batch<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, ExecStats)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let start = Instant::now();
        let workers = self.workers.min(items.len()).max(1);
        if workers <= 1 {
            let mut histogram = LatencyHistogram::new();
            let results = items
                .iter()
                .map(|item| {
                    let t0 = Instant::now();
                    let r = f(item);
                    histogram.record(duration_nanos(t0));
                    r
                })
                .collect::<Vec<R>>();
            let stats = ExecStats {
                wall_nanos: duration_nanos(start),
                per_worker: vec![items.len()],
                histogram,
                worker_deaths: 0,
            };
            return (results, stats);
        }

        // One pre-sized slot per item; workers write results by index, so
        // the in-order drain below reproduces the serial output exactly.
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let deaths = AtomicUsize::new(0);
        let worker_stats: Vec<(usize, LatencyHistogram)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut count = 0usize;
                        let mut histogram = LatencyHistogram::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            if self.death.is_some_and(|plan| plan.fires(i)) {
                                // Simulated worker death: the claimed slot
                                // stays unfilled for the recovery pass.
                                deaths.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            let t0 = Instant::now();
                            let r = f(item);
                            histogram.record(duration_nanos(t0));
                            *slots[i].lock().expect("result slot poisoned") = Some(r);
                            count += 1;
                        }
                        (count, histogram)
                    })
                })
                .collect();
            // Join in spawn order so `per_worker` is indexed by worker id.
            // A worker panic (i.e. an evaluator panic) resurfaces here on
            // the calling thread, as in the serial path.
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(s) => s,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        let mut histogram = LatencyHistogram::new();
        let mut per_worker = Vec::with_capacity(workers);
        for (count, h) in &worker_stats {
            per_worker.push(*count);
            histogram.merge(h);
        }
        // Recovery pass: items lost to dead workers (their claimed slot,
        // plus anything left unclaimed once every worker died) are
        // re-evaluated inline. `f` is pure, so the recovered results are
        // bit-identical to what the lost workers would have produced.
        let results = slots
            .into_iter()
            .enumerate()
            .map(
                |(i, slot)| match slot.into_inner().expect("result slot poisoned") {
                    Some(r) => r,
                    None if self.death.is_some() => {
                        let t0 = Instant::now();
                        let r = f(&items[i]);
                        histogram.record(duration_nanos(t0));
                        r
                    }
                    None => unreachable!(
                        "every index below items.len() was claimed by exactly one worker"
                    ),
                },
            )
            .collect();
        let stats = ExecStats {
            wall_nanos: duration_nanos(start),
            per_worker,
            histogram,
            worker_deaths: deaths.load(Ordering::Relaxed),
        };
        (results, stats)
    }
}

fn duration_nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_bitwise() {
        // f64 results with bit-sensitive values: identical merge order is
        // observable through to_bits().
        let items: Vec<f64> = (0..500).map(|i| f64::from(i) * 0.1 - 25.0).collect();
        let eval = |x: &f64| (x.sin() * 1e9, x.to_bits().rotate_left(7));
        let (serial, _) = ExecPool::serial().evaluate_batch(&items, eval);
        for workers in [2, 3, 8, 64] {
            let (parallel, stats) = ExecPool::new(workers).evaluate_batch(&items, eval);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.0.to_bits(), b.0.to_bits(), "workers={workers}");
                assert_eq!(a.1, b.1);
            }
            assert_eq!(stats.per_worker.iter().sum::<usize>(), items.len());
            assert_eq!(stats.histogram.total(), items.len() as u64);
        }
    }

    #[test]
    fn empty_and_single_batches() {
        let pool = ExecPool::new(8);
        let (empty, stats) = pool.evaluate_batch(&[] as &[u32], |x| x + 1);
        assert!(empty.is_empty());
        assert_eq!(stats.per_worker, vec![0]);
        let (one, stats) = pool.evaluate_batch(&[41u32], |x| x + 1);
        assert_eq!(one, vec![42]);
        assert_eq!(stats.per_worker, vec![1], "one item stays serial");
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(ExecPool::new(0).workers(), 1);
        assert_eq!(ExecPool::serial().workers(), 1);
        assert!(ExecPool::auto().workers() >= 1);
    }

    #[test]
    fn every_item_evaluated_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u64> = (0..1000).collect();
        let (results, _) = ExecPool::new(4).evaluate_batch(&items, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(results[999], 1998);
    }

    #[test]
    fn death_plan_decisions_are_deterministic() {
        let plan = DeathPlan::new(42, 100_000); // 10% of indices
        let fired: Vec<usize> = (0..1000).filter(|&i| plan.fires(i)).collect();
        assert!(!fired.is_empty(), "10% of 1000 indices should fire");
        assert!(fired.len() < 500, "and nowhere near all of them");
        let again: Vec<usize> = (0..1000).filter(|&i| plan.fires(i)).collect();
        assert_eq!(fired, again, "pure in (seed, index)");
        let other: Vec<usize> = (0..1000)
            .filter(|&i| DeathPlan::new(43, 100_000).fires(i))
            .collect();
        assert_ne!(fired, other, "a different seed fires differently");
        assert!((0..1000).all(|i| !DeathPlan::new(42, 0).fires(i)));
    }

    #[test]
    fn worker_deaths_recover_bitwise() {
        let items: Vec<f64> = (0..500).map(|i| f64::from(i) * 0.1 - 25.0).collect();
        let eval = |x: &f64| (x.sin() * 1e9, x.to_bits().rotate_left(7));
        let (baseline, _) = ExecPool::serial().evaluate_batch(&items, eval);
        let plan = DeathPlan::new(7, 60_000);
        let triggering = (0..items.len()).filter(|&i| plan.fires(i)).count();
        assert!(triggering > 0, "the storm must actually fire");
        for workers in [2, 4, 8] {
            let pool = ExecPool::new(workers).with_death_plan(plan);
            let (results, stats) = pool.evaluate_batch(&items, eval);
            assert_eq!(results, baseline, "workers={workers}");
            assert_eq!(
                stats.worker_deaths,
                workers.min(triggering),
                "every worker that claims a triggering item dies exactly once"
            );
            assert_eq!(stats.histogram.total(), items.len() as u64);
        }
        // The serial path has no workers to lose.
        let (results, stats) = ExecPool::serial()
            .with_death_plan(plan)
            .evaluate_batch(&items, eval);
        assert_eq!(results, baseline);
        assert_eq!(stats.worker_deaths, 0);
    }

    #[test]
    fn evaluator_panic_propagates() {
        // Suppress the default panic hook's stderr spew for this test.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            ExecPool::new(4).evaluate_batch(&items, |x| {
                if *x == 13 {
                    panic!("unlucky");
                }
                *x
            })
        });
        std::panic::set_hook(prev);
        assert!(result.is_err(), "worker panic must reach the caller");
    }
}

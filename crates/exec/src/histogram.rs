//! Fixed log-spaced latency histogram for evaluation timings.

/// Number of buckets; see [`LatencyHistogram::bucket_floor_nanos`].
pub const BUCKETS: usize = 24;

/// A latency histogram with fixed log-spaced (power-of-two) buckets.
///
/// Bucket `0` holds durations below 1 µs; every further bucket doubles
/// the boundary (`1–2 µs`, `2–4 µs`, …), and the last bucket is
/// unbounded (≥ ~4.2 s). Fixed buckets keep the histogram mergeable
/// across workers and generations without rebinning, and cheap enough to
/// record every single evaluation.
///
/// # Examples
///
/// ```
/// use clre_exec::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// h.record(500);        // < 1 µs → bucket 0
/// h.record(3_000);      // 2–4 µs → bucket 2
/// h.record(u64::MAX);   // saturates into the last bucket
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[2], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
        }
    }

    /// The bucket index for a duration in nanoseconds.
    fn bucket(nanos: u64) -> usize {
        let micros = nanos / 1_000;
        if micros == 0 {
            0
        } else {
            ((micros.ilog2() as usize) + 1).min(BUCKETS - 1)
        }
    }

    /// The inclusive lower bound of bucket `i`, in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ BUCKETS`.
    pub fn bucket_floor_nanos(i: usize) -> u64 {
        assert!(i < BUCKETS, "bucket index out of range");
        if i == 0 {
            0
        } else {
            1_000u64 << (i - 1)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket(nanos)] += 1;
    }

    /// Folds another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The per-bucket counts.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Total number of recorded durations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Compact `|`-separated bucket counts, truncated after the last
    /// non-empty bucket (`-` when the histogram is empty) — the `hist=`
    /// field of the trace format.
    pub fn compact(&self) -> String {
        let last = match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return "-".to_owned(),
        };
        self.counts[..=last]
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join("|")
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(999), 0);
        assert_eq!(LatencyHistogram::bucket(1_000), 1);
        assert_eq!(LatencyHistogram::bucket(1_999), 1);
        assert_eq!(LatencyHistogram::bucket(2_000), 2);
        assert_eq!(LatencyHistogram::bucket(4_000), 3);
        // Saturation into the final bucket.
        assert_eq!(LatencyHistogram::bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn floors_match_bucket_assignment() {
        assert_eq!(LatencyHistogram::bucket_floor_nanos(0), 0);
        assert_eq!(LatencyHistogram::bucket_floor_nanos(1), 1_000);
        assert_eq!(LatencyHistogram::bucket_floor_nanos(2), 2_000);
        for i in 1..BUCKETS {
            let floor = LatencyHistogram::bucket_floor_nanos(i);
            assert_eq!(LatencyHistogram::bucket(floor), i, "floor of bucket {i}");
            assert_eq!(LatencyHistogram::bucket(floor - 1), i - 1);
        }
    }

    #[test]
    fn merge_sums_bucketwise() {
        let mut a = LatencyHistogram::new();
        a.record(100);
        a.record(5_000);
        let mut b = LatencyHistogram::new();
        b.record(200);
        b.merge(&a);
        assert_eq!(b.total(), 3);
        assert_eq!(b.counts()[0], 2);
        assert_eq!(b.counts()[3], 1);
    }

    #[test]
    fn compact_truncates_trailing_zeros() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.compact(), "-");
        h.record(100);
        h.record(100);
        h.record(1_500);
        assert_eq!(h.compact(), "2|1");
    }
}

//! `clrearly` — facade crate for the CL(R)Early reproduction.
//!
//! Re-exports every workspace crate under one roof so applications (and
//! the examples in `examples/`) can depend on a single crate:
//!
//! * [`core`] — the DSE methodology (tDSE, fcCLR/pfCLR/proposed/Agnostic).
//! * [`model`] — platform / application / CLR / QoS domain model.
//! * [`markov`] — absorbing Markov chains and the Fig. 3 chain builders.
//! * [`profile`] — the gem5/McPAT-substitute characterization models.
//! * [`tgff`] — the TGFF-style synthetic task-graph generator.
//! * [`sched`] — list scheduling and Table III QoS estimation.
//! * [`moea`] — NSGA-II, Pareto utilities and hypervolume.
//! * [`sim`] — Monte-Carlo fault injection validating the Markov models.
//! * [`exec`] — deterministic parallel evaluation engine and telemetry.
//! * [`chaos`] — deterministic chaos injection: seeded fault plans,
//!   fault-injecting problem wrappers and sidecar corruption.
//! * [`serve`] — campaign-as-a-service: the resident multi-tenant DSE
//!   server (`clre-server`/`clre-client`), wire protocol and client.
//! * [`num`] — dense linear algebra and `Γ(x)`.
//!
//! # Examples
//!
//! ```
//! use clrearly::core::apps;
//! use clrearly::core::methodology::{ClrEarly, StageBudget};
//! use clrearly::core::CampaignPlan;
//!
//! # fn main() -> Result<(), clrearly::core::DseError> {
//! let platform = apps::paper_platform();
//! let graph = apps::sobel(&platform, 42)?;
//! let front = ClrEarly::new(&graph, &platform)?
//!     .run(&CampaignPlan::proposed(), &StageBudget::smoke_test())?;
//! assert!(!front.front().is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use clre as core;
pub use clre_chaos as chaos;
pub use clre_exec as exec;
pub use clre_markov as markov;
pub use clre_model as model;
pub use clre_moea as moea;
pub use clre_num as num;
pub use clre_profile as profile;
pub use clre_sched as sched;
pub use clre_serve as serve;
pub use clre_sim as sim;
pub use clre_tgff as tgff;

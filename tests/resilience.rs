//! Integration tests for the fault-tolerant DSE runtime: checkpointed
//! supervised runs resume deterministically to the identical Pareto
//! front, mismatched checkpoints are rejected, and injected numeric
//! failures are isolated instead of aborting the GA.

use std::path::PathBuf;

use clrearly::core::apps;
use clrearly::core::methodology::{ClrEarly, FrontResult, StageBudget};
use clrearly::core::resilience::{keyframe_path, FallibleProblem, ResilientProblem};
use clrearly::core::{CampaignPlan, DseError, Layer, RunOutcome, RunSupervisor, SupervisorConfig};
use clrearly::markov::MarkovError;
use clrearly::moea::{Evaluation, Nsga2, Nsga2Config, Problem, Variation};
use clrearly::num::NumError;

/// A unique throw-away checkpoint path per test (tests may run in
/// parallel within one process).
fn checkpoint_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "clre-resilience-{}-{name}.ckpt",
        std::process::id()
    ))
}

fn supervisor(name: &str) -> RunSupervisor {
    RunSupervisor::new(SupervisorConfig::new(checkpoint_path(name)))
}

/// Fronts must agree point-for-point: same genomes, same objectives.
fn assert_same_front(a: &FrontResult, b: &FrontResult) {
    assert_eq!(a.front().len(), b.front().len(), "front sizes differ");
    for (pa, pb) in a.front().iter().zip(b.front()) {
        assert_eq!(pa.genome, pb.genome, "front genomes differ");
        assert_eq!(pa.objectives, pb.objectives, "front objectives differ");
    }
    assert_eq!(a.evaluations, b.evaluations, "evaluation counts differ");
}

#[test]
fn fc_resume_reproduces_uninterrupted_front() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let dse = ClrEarly::new(&graph, &platform).unwrap();
    let budget = StageBudget::smoke_test();

    let baseline = dse
        .run_supervised(&CampaignPlan::fc(), &budget, &supervisor("fc-baseline"))
        .unwrap()
        .expect_complete();
    // The supervised runner shares the plain runner's RNG trajectory.
    let plain = dse.run(&CampaignPlan::fc(), &budget).unwrap();
    assert_same_front(&baseline, &plain);

    // Crash mid-run at generation 3, then resume from the checkpoint.
    let sup = supervisor("fc-interrupt").with_interrupt_at(0, 3);
    match dse
        .run_supervised(&CampaignPlan::fc(), &budget, &sup)
        .unwrap()
    {
        RunOutcome::Interrupted { stage, generation } => {
            assert_eq!((stage, generation), (0, 3));
        }
        RunOutcome::Complete(_) => panic!("expected an interrupted run"),
    }
    let resumed = dse
        .resume_supervised(&budget, &supervisor("fc-interrupt"))
        .unwrap()
        .expect_complete();

    assert_same_front(&baseline, &resumed);
    assert_eq!(resumed.health.resumed_from_generation, Some(3));
    assert!(resumed.health.checkpoints_written > 0);
    assert!(
        !checkpoint_path("fc-interrupt").exists(),
        "checkpoint not cleaned up"
    );
}

#[test]
fn proposed_resume_reproduces_front_from_either_stage() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let dse = ClrEarly::new(&graph, &platform).unwrap();
    let budget = StageBudget::smoke_test().with_seed(7);

    let baseline = dse
        .run_supervised(
            &CampaignPlan::proposed(),
            &budget,
            &supervisor("prop-baseline"),
        )
        .unwrap()
        .expect_complete();
    let plain = dse.run(&CampaignPlan::proposed(), &budget).unwrap();
    assert_same_front(&baseline, &plain);

    // Interrupt during stage 0 (the pf stage): the whole flow — the rest
    // of stage 0 plus all of stage 1 — must replay identically.
    let sup = supervisor("prop-s0").with_interrupt_at(0, 2);
    match dse
        .run_supervised(&CampaignPlan::proposed(), &budget, &sup)
        .unwrap()
    {
        RunOutcome::Interrupted { stage, generation } => {
            assert_eq!((stage, generation), (0, 2));
        }
        RunOutcome::Complete(_) => panic!("expected stage-0 interruption"),
    }
    let resumed0 = dse
        .resume_supervised(&budget, &supervisor("prop-s0"))
        .unwrap()
        .expect_complete();
    assert_same_front(&baseline, &resumed0);
    assert_eq!(resumed0.health.resumed_from_generation, Some(2));

    // Interrupt during stage 1 (the seeded fc stage): the resume must
    // reconstitute the pf-stage front from the checkpoint's aux genomes
    // and still merge to the identical final front.
    let sup = supervisor("prop-s1").with_interrupt_at(1, 5);
    match dse
        .run_supervised(&CampaignPlan::proposed(), &budget, &sup)
        .unwrap()
    {
        RunOutcome::Interrupted { stage, generation } => {
            assert_eq!((stage, generation), (1, 5));
        }
        RunOutcome::Complete(_) => panic!("expected stage-1 interruption"),
    }
    let resumed1 = dse
        .resume_supervised(&budget, &supervisor("prop-s1"))
        .unwrap()
        .expect_complete();
    assert_same_front(&baseline, &resumed1);
    assert_eq!(resumed1.health.resumed_from_generation, Some(5));
}

#[test]
fn spea2_pf_resume_reproduces_uninterrupted_front() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let dse = ClrEarly::new(&graph, &platform).unwrap();
    let budget = StageBudget::smoke_test().with_seed(5);

    let baseline = dse.run(&CampaignPlan::pf_spea2(), &budget).unwrap();

    // Kill the SPEA2 run mid-generation: the archive, population and RNG
    // stream all live in the checkpoint, so the resumed trajectory must
    // be the uninterrupted one bit-for-bit.
    let sup = supervisor("spea2-interrupt").with_interrupt_at(0, 3);
    match dse
        .run_supervised(&CampaignPlan::pf_spea2(), &budget, &sup)
        .unwrap()
    {
        RunOutcome::Interrupted { stage, generation } => {
            assert_eq!((stage, generation), (0, 3));
        }
        RunOutcome::Complete(_) => panic!("expected an interrupted run"),
    }
    let resumed = dse
        .resume_supervised(&budget, &supervisor("spea2-interrupt"))
        .unwrap()
        .expect_complete();

    assert_same_front(&baseline, &resumed);
    assert_eq!(resumed.health.resumed_from_generation, Some(3));
    assert!(
        !checkpoint_path("spea2-interrupt").exists(),
        "checkpoint not cleaned up"
    );
}

#[test]
fn agnostic_resume_reproduces_merged_front_mid_campaign() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let dse = ClrEarly::new(&graph, &platform).unwrap();
    let budget = StageBudget::smoke_test().with_seed(3);

    let baseline = dse.run(&CampaignPlan::agnostic(), &budget).unwrap();

    // The Agnostic campaign runs four single-layer stages on a quarter
    // of the generation budget each (smoke budget: 2 generations per
    // stage). Kill it inside the third stage: the resume must replay
    // that stage's tail plus the fourth stage and still merge all four
    // layer fronts into the identical Pareto set.
    let sup = supervisor("agnostic-interrupt").with_interrupt_at(2, 1);
    match dse
        .run_supervised(&CampaignPlan::agnostic(), &budget, &sup)
        .unwrap()
    {
        RunOutcome::Interrupted { stage, generation } => {
            assert_eq!((stage, generation), (2, 1));
        }
        RunOutcome::Complete(_) => panic!("expected a stage-2 interruption"),
    }
    let resumed = dse
        .resume_supervised(&budget, &supervisor("agnostic-interrupt"))
        .unwrap()
        .expect_complete();

    assert_same_front(&baseline, &resumed);
    assert_eq!(resumed.health.resumed_from_generation, Some(1));
    assert!(
        !checkpoint_path("agnostic-interrupt").exists(),
        "checkpoint not cleaned up"
    );
}

#[test]
fn delta_checkpoints_resume_identically() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let dse = ClrEarly::new(&graph, &platform).unwrap();
    let budget = StageBudget::smoke_test().with_seed(7);

    let baseline = dse.run(&CampaignPlan::proposed(), &budget).unwrap();

    let delta_supervisor = |name: &str| {
        RunSupervisor::new(SupervisorConfig::new(checkpoint_path(name)).with_delta_checkpoints(2))
    };

    let sup = delta_supervisor("delta-interrupt").with_interrupt_at(1, 5);
    match dse
        .run_supervised(&CampaignPlan::proposed(), &budget, &sup)
        .unwrap()
    {
        RunOutcome::Interrupted { stage, generation } => {
            assert_eq!((stage, generation), (1, 5));
        }
        RunOutcome::Complete(_) => panic!("expected an interrupted run"),
    }
    // With a keyframe cadence of 2, the stage-1 interrupt leaves a
    // keyframe plus a delta on disk — the resume must reassemble the
    // full checkpoint from the pair.
    assert!(
        keyframe_path(&checkpoint_path("delta-interrupt")).exists(),
        "delta mode wrote no keyframe"
    );
    let resumed = dse
        .resume_supervised(&budget, &delta_supervisor("delta-interrupt"))
        .unwrap()
        .expect_complete();

    assert_same_front(&baseline, &resumed);
    assert_eq!(resumed.health.resumed_from_generation, Some(5));
    assert!(
        !checkpoint_path("delta-interrupt").exists(),
        "checkpoint not cleaned up"
    );
    assert!(
        !keyframe_path(&checkpoint_path("delta-interrupt")).exists(),
        "keyframe not cleaned up"
    );
}

#[test]
fn campaign_plans_match_run_wrappers() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let dse = ClrEarly::new(&graph, &platform).unwrap();
    let budget = StageBudget::smoke_test().with_seed(13);

    // Every `run_*` entry point is a thin wrapper over a built-in
    // campaign plan; the front a caller-assembled plan produces must be
    // the wrapper's, bit for bit.
    let plans = [
        (CampaignPlan::fc(), dse.run(&CampaignPlan::fc(), &budget)),
        (CampaignPlan::pf(), dse.run(&CampaignPlan::pf(), &budget)),
        (
            CampaignPlan::proposed(),
            dse.run(&CampaignPlan::proposed(), &budget),
        ),
        (
            CampaignPlan::agnostic(),
            dse.run(&CampaignPlan::agnostic(), &budget),
        ),
        (
            CampaignPlan::pf_spea2(),
            dse.run(&CampaignPlan::pf_spea2(), &budget),
        ),
        (
            CampaignPlan::single_layer(Layer::Hw),
            dse.run(&CampaignPlan::single_layer(Layer::Hw), &budget),
        ),
    ];
    for (plan, wrapper) in plans {
        let via_campaign = dse.run(&plan, &budget).unwrap();
        assert_same_front(&via_campaign, &wrapper.unwrap());
    }
}

#[test]
fn resume_rejects_mismatched_budget_and_missing_checkpoint() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let dse = ClrEarly::new(&graph, &platform).unwrap();
    let budget = StageBudget::smoke_test();

    // No checkpoint file at all.
    let err = dse
        .resume_supervised(&budget, &supervisor("missing"))
        .unwrap_err();
    assert!(matches!(err, DseError::Checkpoint { .. }), "got {err}");

    // A checkpoint from seed 1 must not silently resume under seed 9 —
    // the resumed trajectory would not match either run.
    let sup = supervisor("mismatch").with_interrupt_at(0, 2);
    dse.run_supervised(&CampaignPlan::fc(), &budget, &sup)
        .unwrap();
    let err = dse
        .resume_supervised(&budget.with_seed(9), &supervisor("mismatch"))
        .unwrap_err();
    assert!(matches!(err, DseError::Checkpoint { .. }), "got {err}");
    let _ = std::fs::remove_file(checkpoint_path("mismatch"));
}

/// A toy problem whose evaluator reports the Markov solver's
/// singular-matrix failure for part of the genome space.
struct SingularInjector;

impl Problem for SingularInjector {
    type Genome = u32;

    fn objective_count(&self) -> usize {
        2
    }

    fn random_genome(&self, rng: &mut dyn rand::RngCore) -> u32 {
        rng.next_u32() % 100
    }

    fn evaluate(&self, genome: &u32) -> Evaluation {
        match FallibleProblem::try_evaluate(self, genome) {
            Ok(eval) => eval,
            Err(e) => panic!("genome evaluation failed: {e}"),
        }
    }
}

impl FallibleProblem for SingularInjector {
    fn try_evaluate(&self, genome: &u32) -> Result<Evaluation, DseError> {
        if genome.is_multiple_of(10) {
            return Err(DseError::Markov(MarkovError::Numeric(NumError::Singular {
                pivot: 0,
            })));
        }
        let x = f64::from(*genome);
        Ok(Evaluation::feasible(vec![x, 100.0 - x]))
    }
}

struct StepMutation;

impl Variation<u32> for StepMutation {
    fn crossover(&self, a: &u32, b: &u32, _rng: &mut dyn rand::RngCore) -> (u32, u32) {
        ((a + b) / 2, a.abs_diff(*b))
    }

    fn mutate(&self, genome: &mut u32, rng: &mut dyn rand::RngCore) {
        *genome = (*genome + 1 + rng.next_u32() % 7) % 100;
    }
}

#[test]
fn injected_singular_failures_do_not_abort_the_ga() {
    let resilient = ResilientProblem::new(SingularInjector);
    let health = resilient.health();
    let ga = Nsga2::new(
        resilient,
        StepMutation,
        Nsga2Config::new(20, 10).with_seed(11),
    );

    // One in ten genomes reports NumError::Singular; the run must still
    // complete, with the failures isolated and quarantined rather than
    // propagated.
    let result = ga.run();
    assert!(!result.front().is_empty());

    let report = health.lock().unwrap().clone();
    assert!(
        report.errors_isolated > 0,
        "no failures were injected: {report:?}"
    );
    assert!(
        report.quarantined > 0,
        "failing genomes were not quarantined"
    );
    assert_eq!(report.panics_isolated, 0);
    assert!(!report.is_clean());

    // Quarantined genomes never make it onto the reported front.
    for ind in result.front() {
        assert_ne!(ind.genome % 10, 0, "quarantined genome on the front");
    }
}

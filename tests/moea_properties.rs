//! Property-based tests of the MOEA substrate: dominance, Pareto
//! filtering, non-dominated sorting, crowding and hypervolume invariants.

use clrearly::moea::hypervolume::{hypervolume, hypervolume_2d};
use clrearly::moea::kernels;
use clrearly::moea::pareto::{
    constrained_dominates, constrained_dominates_blocked, crowding_distance, dominates,
    dominates_blocked, fast_non_dominated_sort, non_dominated_indices, pareto_filter,
};
use clrearly::moea::{DistanceMatrix, ObjectiveMatrix};
use proptest::prelude::*;

/// Objective coordinates chosen to exercise every dominance edge case:
/// NaN payloads, signed zeros, exact ties and infinities.
fn arb_nasty_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(-0.0),
        Just(0.0),
        Just(0.5),
        Just(1.0),
        Just(-1.5),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

/// Constraint violations including the negative and NaN values the
/// scalar kernel treats as "infeasible unless exactly 0.0".
fn arb_nasty_violation() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(-0.0), Just(0.5), Just(-1.0), Just(f64::NAN),]
}

/// One edit step applied to an evolving point set plus its incrementally
/// maintained distance matrix.
#[derive(Debug, Clone)]
enum DistOp {
    /// Overwrite the rows at these (to-be-clamped) indices with fresh
    /// coordinates, then `update_rows` those indices.
    Update(Vec<(usize, Vec<f64>)>),
    /// Keep a pseudo-random strictly-ascending subset of rows (selected
    /// by this bitmask seed) via `compact`.
    Compact(u64),
    /// Prepend fresh rows and rebuild through `refill_with_tail`, reusing
    /// the current matrix as the trailing block.
    Grow(Vec<Vec<f64>>),
}

fn arb_dist_op(dim: usize) -> impl Strategy<Value = DistOp> {
    let coord = -10.0..10.0f64;
    let row = prop::collection::vec(coord.clone(), dim);
    prop_oneof![
        prop::collection::vec((0usize..64, row.clone()), 1..6).prop_map(DistOp::Update),
        any::<u64>().prop_map(DistOp::Compact),
        prop::collection::vec(row, 1..5).prop_map(DistOp::Grow),
    ]
}

fn arb_points(dim: usize, max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..10.0f64, dim), 1..max)
}

/// Constrained clouds on a coarse lattice: exact duplicates and per-axis
/// ties are common, and about a third of the points are infeasible — the
/// hard case for order-sensitive kernels.
fn arb_constrained_lattice(dim: usize, max: usize) -> impl Strategy<Value = Vec<(Vec<f64>, f64)>> {
    prop::collection::vec(
        (
            prop::collection::vec((0u32..6).prop_map(|x| f64::from(x) * 0.5), dim),
            (0u32..3).prop_map(|v| if v == 2 { 1.5 } else { 0.0 }),
        ),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(p in prop::collection::vec(0.0..10.0f64, 3)) {
        prop_assert!(!dominates(&p, &p));
        let q: Vec<f64> = p.iter().map(|x| x + 1.0).collect();
        prop_assert!(dominates(&p, &q));
        prop_assert!(!dominates(&q, &p));
    }

    #[test]
    fn pareto_filter_is_idempotent(points in arb_points(2, 40)) {
        let once = pareto_filter(&points);
        let twice = pareto_filter(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn filtered_points_are_mutually_nondominated(points in arb_points(3, 40)) {
        let front = pareto_filter(&points);
        for a in &front {
            for b in &front {
                prop_assert!(!dominates(a, b) || a == b);
            }
        }
    }

    #[test]
    fn every_dropped_point_is_dominated_or_duplicate(points in arb_points(2, 30)) {
        let keep = non_dominated_indices(&points);
        for (i, p) in points.iter().enumerate() {
            if keep.contains(&i) {
                continue;
            }
            let covered = points
                .iter()
                .enumerate()
                .any(|(j, q)| i != j && (dominates(q, p) || (q == p && j < i)));
            prop_assert!(covered, "point {i} dropped without a dominator");
        }
    }

    #[test]
    fn sort_fronts_partition_population(points in arb_points(2, 40)) {
        let violations = vec![0.0; points.len()];
        let fronts = fast_non_dominated_sort(&points, &violations);
        let mut seen = vec![false; points.len()];
        for front in &fronts {
            for &i in front {
                prop_assert!(!seen[i], "index {i} in two fronts");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Front 0 must equal the non-dominated filter result (as sets).
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        let mut nd = non_dominated_indices(&points);
        // non_dominated_indices drops exact duplicates; front 0 keeps them.
        // Every nd index must be in front 0.
        nd.retain(|i| !f0.contains(i));
        prop_assert!(nd.is_empty(), "nd indices missing from front 0: {nd:?}");
    }

    #[test]
    fn later_fronts_are_dominated_by_earlier(points in arb_points(2, 25)) {
        let violations = vec![0.0; points.len()];
        let fronts = fast_non_dominated_sort(&points, &violations);
        for w in fronts.windows(2) {
            for &later in &w[1] {
                let dominated = w[0]
                    .iter()
                    .any(|&earlier| dominates(&points[earlier], &points[later]));
                prop_assert!(dominated, "front member {later} not dominated by previous front");
            }
        }
    }

    #[test]
    fn crowding_is_nonnegative_and_boundaries_infinite(points in arb_points(2, 20)) {
        let front = pareto_filter(&points);
        let d = crowding_distance(&front);
        prop_assert!(d.iter().all(|&x| x >= 0.0));
        if front.len() > 2 {
            let inf = d.iter().filter(|x| x.is_infinite()).count();
            prop_assert!(inf >= 2, "at least both boundary points must be infinite");
        }
    }

    #[test]
    fn hypervolume_nonnegative_and_bounded(points in arb_points(2, 30)) {
        let r = [11.0, 11.0];
        let hv = hypervolume_2d(&points, &r);
        prop_assert!(hv >= 0.0);
        // Bounded by the box from the ideal corner to the reference.
        prop_assert!(hv <= 11.0 * 11.0 + 1e-9);
    }

    #[test]
    fn hypervolume_monotone_under_union(a in arb_points(2, 15), b in arb_points(2, 15)) {
        let r = [11.0, 11.0];
        let mut union = a.clone();
        union.extend(b);
        prop_assert!(hypervolume_2d(&union, &r) >= hypervolume_2d(&a, &r) - 1e-12);
    }

    #[test]
    fn wfg_agrees_with_sweep_in_2d(points in arb_points(2, 12)) {
        // Route the same points through the n-D WFG machinery by lifting
        // them to 3-D with a constant third axis; volumes must match the
        // 2-D sweep times the third-axis extent.
        let r2 = [11.0, 11.0];
        let sweep = hypervolume_2d(&points, &r2);
        let lifted: Vec<Vec<f64>> = points.iter().map(|p| vec![p[0], p[1], 5.0]).collect();
        let wfg = hypervolume(&lifted, &[11.0, 11.0, 6.0]);
        prop_assert!((wfg - sweep).abs() < 1e-9, "{wfg} vs {sweep}");
    }

    #[test]
    fn dominated_points_never_change_hypervolume(points in arb_points(2, 20)) {
        let r = [11.0, 11.0];
        let full = hypervolume_2d(&points, &r);
        let front = pareto_filter(&points);
        let filtered = hypervolume_2d(&front, &r);
        prop_assert!((full - filtered).abs() < 1e-12);
    }

    #[test]
    fn ens_sort_equals_deb_oracle_on_tied_clouds(cloud in arb_constrained_lattice(3, 60)) {
        let rows: Vec<Vec<f64>> = cloud.iter().map(|(p, _)| p.clone()).collect();
        let violations: Vec<f64> = cloud.iter().map(|(_, v)| *v).collect();
        let m = ObjectiveMatrix::from_rows(&rows);
        let ens = kernels::ens_non_dominated_sort(&m, &violations);
        let deb = kernels::deb_non_dominated_sort(&m, &violations);
        prop_assert_eq!(ens, deb);
    }

    #[test]
    fn ens_sort_equals_deb_oracle_on_continuous_clouds(points in arb_points(2, 50)) {
        let violations = vec![0.0; points.len()];
        let m = ObjectiveMatrix::from_rows(&points);
        let ens = kernels::ens_non_dominated_sort(&m, &violations);
        let deb = kernels::deb_non_dominated_sort(&m, &violations);
        prop_assert_eq!(ens, deb);
    }

    #[test]
    fn blocked_dominance_equals_scalar_on_nasty_vectors(
        pairs in prop::collection::vec(arb_nasty_coord(), 1..11)
            .prop_flat_map(|a| {
                let n = a.len();
                (Just(a), prop::collection::vec(arb_nasty_coord(), n))
            }),
        va in arb_nasty_violation(),
        vb in arb_nasty_violation(),
    ) {
        let (a, b) = pairs;
        prop_assert_eq!(dominates_blocked(&a, &b), dominates(&a, &b));
        prop_assert_eq!(dominates_blocked(&b, &a), dominates(&b, &a));
        prop_assert_eq!(
            constrained_dominates_blocked(&a, va, &b, vb),
            constrained_dominates(&a, va, &b, vb)
        );
        prop_assert_eq!(
            constrained_dominates_blocked(&b, vb, &a, va),
            constrained_dominates(&b, vb, &a, va)
        );
    }

    #[test]
    fn blocked_dominance_equals_scalar_on_tied_lattices(cloud in arb_constrained_lattice(5, 20)) {
        for (a, va) in &cloud {
            for (b, vb) in &cloud {
                prop_assert_eq!(dominates_blocked(a, b), dominates(a, b));
                prop_assert_eq!(
                    constrained_dominates_blocked(a, *va, b, *vb),
                    constrained_dominates(a, *va, b, *vb)
                );
            }
        }
    }

    #[test]
    fn incremental_distance_matrix_equals_full_rebuild(
        start in arb_points(3, 12),
        ops in prop::collection::vec(arb_dist_op(3), 1..8),
    ) {
        let mut rows = start;
        let mut m = ObjectiveMatrix::from_rows(&rows);
        let mut dist = DistanceMatrix::from_points(&m);
        for op in ops {
            match op {
                DistOp::Update(edits) => {
                    let mut changed: Vec<usize> = edits
                        .iter()
                        .map(|(i, _)| i % rows.len())
                        .collect();
                    for ((i, row), &slot) in edits.iter().zip(&changed) {
                        let _ = i;
                        rows[slot] = row.clone();
                    }
                    changed.sort_unstable();
                    changed.dedup();
                    m = ObjectiveMatrix::from_rows(&rows);
                    dist.update_rows(&m, &changed);
                }
                DistOp::Compact(mask) => {
                    let keep: Vec<usize> = (0..rows.len())
                        .filter(|&i| i == 0 || mask >> (i % 64) & 1 == 1)
                        .collect();
                    rows = keep.iter().map(|&i| rows[i].clone()).collect();
                    m = ObjectiveMatrix::from_rows(&rows);
                    dist.compact(&keep);
                }
                DistOp::Grow(fresh) => {
                    let tail = dist.clone();
                    let mut next = fresh;
                    next.extend(rows.iter().cloned());
                    rows = next;
                    m = ObjectiveMatrix::from_rows(&rows);
                    dist.refill_with_tail(&m, &tail);
                }
            }
            let full = DistanceMatrix::from_points(&m);
            prop_assert!(
                dist.bits_eq(&full),
                "incremental matrix diverged from full rebuild at n={}",
                rows.len()
            );
        }
    }

    #[test]
    fn cached_truncation_equals_naive_oracle(cloud in arb_constrained_lattice(2, 40)) {
        let rows: Vec<Vec<f64>> = cloud.iter().map(|(p, _)| p.clone()).collect();
        let m = ObjectiveMatrix::from_rows(&rows);
        let dist = DistanceMatrix::from_points(&m);
        let members: Vec<usize> = (0..rows.len()).collect();
        for target in [0, rows.len() / 2, rows.len().saturating_sub(1), rows.len()] {
            let cached = kernels::spea2_truncate(&dist, members.clone(), target);
            let naive = kernels::spea2_truncate_naive(&dist, members.clone(), target);
            prop_assert_eq!(cached, naive, "target {}", target);
        }
    }
}

//! End-to-end integration tests spanning every crate: application
//! construction → task-level DSE → system-level search → QoS metrics.

use clrearly::core::apps;
use clrearly::core::methodology::{reference_point, ClrEarly, StageBudget};
use clrearly::core::tdse::{build_library, TdseConfig};
use clrearly::core::CampaignPlan;
use clrearly::model::qos::ObjectiveSet;
use clrearly::model::TaskTypeId;
use clrearly::moea::hypervolume::hypervolume;
use clrearly::moea::pareto::non_dominated_indices;

#[test]
fn sobel_full_pipeline() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).expect("sobel builds");
    let dse = ClrEarly::new(&graph, &platform).expect("tDSE succeeds");
    let budget = StageBudget::smoke_test();
    let result = dse
        .run(&CampaignPlan::proposed(), &budget)
        .expect("proposed runs");
    assert!(!result.front().is_empty());
    for p in result.front() {
        // Makespan must be at least the longest single task (serial lower
        // bound is harder to state; this sanity bound always holds).
        assert!(p.metrics.makespan > 1.0e-5);
        assert!(p.metrics.makespan < 1.0);
        assert!((0.0..=1.0).contains(&p.metrics.error_prob));
        assert!(p.metrics.mttf > 0.0);
        assert!(p.metrics.energy > 0.0);
        assert!(p.metrics.peak_power > 0.0);
    }
}

#[test]
fn front_is_internally_consistent() {
    let (platform, graph) = apps::synthetic_app(12, 5).expect("app builds");
    let dse = ClrEarly::new(&graph, &platform).expect("tDSE succeeds");
    let result = dse
        .run(&CampaignPlan::pf(), &StageBudget::smoke_test())
        .expect("runs");
    // Objectives really are (makespan, error_prob) of the metrics.
    for p in result.front() {
        assert_eq!(p.objectives[0], p.metrics.makespan);
        assert_eq!(p.objectives[1], p.metrics.error_prob);
    }
    // And mutually non-dominated.
    let objs = result.objectives();
    assert_eq!(non_dominated_indices(&objs).len(), objs.len());
}

#[test]
fn proposed_dominates_fcclr_on_medium_apps() {
    let (platform, graph) = apps::synthetic_app(30, 9).expect("app builds");
    let dse = ClrEarly::new(&graph, &platform).expect("tDSE succeeds");
    let budget = StageBudget::new(24, 16).with_seed(5);
    let fc = dse
        .run(&CampaignPlan::fc(), &budget)
        .expect("fc runs")
        .objectives();
    let prop = dse
        .run(&CampaignPlan::proposed(), &budget)
        .expect("proposed runs")
        .objectives();
    let r = reference_point([fc.as_slice(), prop.as_slice()]);
    assert!(
        hypervolume(&prop, &r) > hypervolume(&fc, &r),
        "proposed must beat fcCLR at T=30"
    );
}

#[test]
fn whole_flow_is_deterministic() {
    let run = || {
        let (platform, graph) = apps::synthetic_app(10, 3).expect("app builds");
        let dse = ClrEarly::new(&graph, &platform).expect("tDSE succeeds");
        dse.run(
            &CampaignPlan::proposed(),
            &StageBudget::smoke_test().with_seed(77),
        )
        .expect("runs")
        .objectives()
    };
    assert_eq!(run(), run());
}

#[test]
fn library_counts_match_catalog_arithmetic() {
    let platform = apps::sobel_platform();
    let graph = apps::sobel(&platform, 42).expect("sobel builds");
    let lib = build_library(&graph, &platform, &TdseConfig::new()).expect("library");
    // 1 processor impl × 3 modes × 80 CLR + 1 accel impl × 1 mode × 80.
    for ty in 0..4 {
        assert_eq!(lib.full_count(TaskTypeId::new(ty)), 3 * 80 + 80);
        let pareto = lib.pareto_count(TaskTypeId::new(ty));
        assert!((2..80).contains(&pareto), "pareto count {pareto} off-range");
    }
}

#[test]
fn tasklevel_objective_sets_shape_system_search_space() {
    let (platform, graph) = apps::synthetic_app(10, 7).expect("app builds");
    let small = ClrEarly::with_tdse_config(
        &graph,
        &platform,
        TdseConfig::new().with_objectives(ObjectiveSet::set_ii()),
    )
    .expect("tDSE");
    let large = ClrEarly::with_tdse_config(
        &graph,
        &platform,
        TdseConfig::new().with_objectives(ObjectiveSet::set_iii()),
    )
    .expect("tDSE");
    let total = |dse: &ClrEarly<'_>| -> usize {
        (0..graph.task_types().len())
            .map(|ty| dse.library().pareto_count(TaskTypeId::new(ty as u32)))
            .sum()
    };
    assert!(total(&large) > total(&small));
}

#[test]
fn agnostic_is_dominated_in_error_floor() {
    // The cross-layer front must reach a lower application error than the
    // best single-layer combination — the core CLR claim.
    let (platform, graph) = apps::synthetic_app(15, 21).expect("app builds");
    let dse = ClrEarly::new(&graph, &platform).expect("tDSE succeeds");
    let budget = StageBudget::new(24, 16).with_seed(2);
    let clr = dse
        .run(&CampaignPlan::proposed(), &budget)
        .expect("clr runs");
    let agn = dse
        .run(&CampaignPlan::agnostic(), &budget)
        .expect("agnostic runs");
    let min_err = |front: &clrearly::core::FrontResult| {
        front
            .front()
            .iter()
            .map(|p| p.metrics.error_prob)
            .fold(f64::MAX, f64::min)
    };
    assert!(
        min_err(&clr) < min_err(&agn),
        "CLR error floor {} must undercut agnostic {}",
        min_err(&clr),
        min_err(&agn)
    );
}

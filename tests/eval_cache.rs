//! Integration tests for the content-addressed evaluation cache: cached
//! and uncached runs produce bit-identical Pareto fronts at any worker
//! count, an interrupted cached run warm-starts its resume from the
//! persisted sidecar, and a torn or foreign sidecar degrades to a cold
//! in-memory cache instead of failing the run.

use std::path::PathBuf;
use std::sync::Arc;

use clrearly::core::apps;
use clrearly::core::cache::{cache_sidecar_path, EvalCache};
use clrearly::core::methodology::{ClrEarly, FrontResult, StageBudget};
use clrearly::core::CampaignPlan;
use clrearly::core::{RunOutcome, RunSupervisor, SupervisorConfig};
use clrearly::exec::{ExecPool, Executor};
use clrearly::moea::{EvalError, Evaluation, Problem};
use rand::RngCore;

/// A unique throw-away scratch directory per test: the cache sidecar
/// lives next to the checkpoint, so each test isolates both in its own
/// directory.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clre-evalcache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Fronts must agree to the bit: same genomes, same objective bit
/// patterns (stricter than `==`, which would let `-0.0` pass for `0.0`).
fn assert_bit_identical(a: &FrontResult, b: &FrontResult) {
    assert_eq!(a.front().len(), b.front().len(), "front sizes differ");
    for (pa, pb) in a.front().iter().zip(b.front()) {
        assert_eq!(pa.genome, pb.genome, "front genomes differ");
        assert_eq!(pa.objectives.len(), pb.objectives.len());
        for (x, y) in pa.objectives.iter().zip(&pb.objectives) {
            assert_eq!(x.to_bits(), y.to_bits(), "objective bits differ");
        }
    }
}

#[test]
fn cached_fc_front_is_bit_identical_for_any_worker_count() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let budget = StageBudget::smoke_test();

    for workers in [1usize, 4] {
        let baseline = ClrEarly::new(&graph, &platform)
            .unwrap()
            .with_executor(Executor::new(ExecPool::new(workers)))
            .run(&CampaignPlan::fc(), &budget)
            .unwrap();

        let cache = EvalCache::shared();
        let cached = ClrEarly::new(&graph, &platform)
            .unwrap()
            .with_executor(Executor::new(ExecPool::new(workers)))
            .with_cache(Arc::clone(&cache));
        let cold = cached.run(&CampaignPlan::fc(), &budget).unwrap();
        let warm = cached.run(&CampaignPlan::fc(), &budget).unwrap();

        assert_bit_identical(&baseline, &cold);
        assert_bit_identical(&baseline, &warm);
        let counts = cache.fitness_counts();
        assert!(counts.hits > 0, "warm rerun never hit: {counts:?}");
    }
}

#[test]
fn cached_seeded_proposed_front_is_bit_identical_for_any_worker_count() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let budget = StageBudget::smoke_test().with_seed(7);

    for workers in [1usize, 4] {
        let baseline = ClrEarly::new(&graph, &platform)
            .unwrap()
            .with_executor(Executor::new(ExecPool::new(workers)))
            .run(&CampaignPlan::proposed(), &budget)
            .unwrap();

        let cache = EvalCache::shared();
        let cached = ClrEarly::new(&graph, &platform)
            .unwrap()
            .with_executor(Executor::new(ExecPool::new(workers)))
            .with_cache(Arc::clone(&cache));
        let cold = cached.run(&CampaignPlan::proposed(), &budget).unwrap();
        let warm = cached.run(&CampaignPlan::proposed(), &budget).unwrap();

        assert_bit_identical(&baseline, &cold);
        assert_bit_identical(&baseline, &warm);
        // The seeded fc stage re-visits pf-stage genomes, so even the
        // cold campaign must hit (the two stages share fitness entries —
        // the problem digest excludes the choice-mode filter).
        let counts = cache.fitness_counts();
        assert!(counts.hits > 0, "seeded campaign never hit: {counts:?}");
    }
}

#[test]
fn warm_start_resume_reuses_the_persisted_sidecar() {
    let dir = scratch_dir("resume");
    let ckpt = dir.join("run.ckpt");
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let budget = StageBudget::smoke_test();

    let baseline = ClrEarly::new(&graph, &platform)
        .unwrap()
        .run(&CampaignPlan::fc(), &budget)
        .unwrap();

    // Kill a cached run mid-generation. Binding is automatic: the
    // supervised runner journals the cache next to its checkpoint.
    let dse = ClrEarly::new(&graph, &platform)
        .unwrap()
        .with_cache(EvalCache::shared());
    let sup = RunSupervisor::new(SupervisorConfig::new(ckpt.clone())).with_interrupt_at(0, 3);
    match dse
        .run_supervised(&CampaignPlan::fc(), &budget, &sup)
        .unwrap()
    {
        RunOutcome::Interrupted { stage, generation } => {
            assert_eq!((stage, generation), (0, 3));
        }
        RunOutcome::Complete(_) => panic!("expected an interrupted run"),
    }
    let sidecar = cache_sidecar_path(&ckpt);
    assert!(sidecar.exists(), "interrupted run left no cache sidecar");

    // A fresh process resumes: its empty cache warm-starts from the
    // sidecar, so the replayed generations are answered by lookups.
    let cache = EvalCache::shared();
    let resumed = ClrEarly::new(&graph, &platform)
        .unwrap()
        .with_cache(Arc::clone(&cache))
        .resume_supervised(&budget, &RunSupervisor::new(SupervisorConfig::new(ckpt)))
        .unwrap()
        .expect_complete();

    assert_bit_identical(&baseline, &resumed);
    assert_eq!(resumed.health.resumed_from_generation, Some(3));
    let counts = cache.fitness_counts();
    assert!(
        counts.hits > 0,
        "resume re-evaluated everything from scratch: {counts:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_or_foreign_sidecar_degrades_to_cold_cache() {
    let dir = scratch_dir("torn");
    let sidecar = dir.join("cache.txt");
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let budget = StageBudget::smoke_test();

    let baseline = ClrEarly::new(&graph, &platform)
        .unwrap()
        .run(&CampaignPlan::fc(), &budget)
        .unwrap();

    // Populate a genuine sidecar, then mangle it the way a kill would:
    // a malformed line wedged into the middle and a torn final line.
    {
        let cache = EvalCache::shared();
        cache.bind_sidecar(&sidecar).unwrap();
        let dse = ClrEarly::new(&graph, &platform).unwrap().with_cache(cache);
        let _ = dse.run(&CampaignPlan::fc(), &budget).unwrap();
    }
    let mut text = std::fs::read_to_string(&sidecar).unwrap();
    assert!(text.len() > 40, "sidecar unexpectedly empty");
    text.insert_str(text.len() / 2, "\nnot a journal line\n");
    text.truncate(text.len() - 7);
    std::fs::write(&sidecar, &text).unwrap();

    let cache = EvalCache::shared();
    cache
        .bind_sidecar(&sidecar)
        .expect("torn sidecar must bind, not error");
    let front = ClrEarly::new(&graph, &platform)
        .unwrap()
        .with_cache(Arc::clone(&cache))
        .run(&CampaignPlan::fc(), &budget)
        .unwrap();
    assert_bit_identical(&baseline, &front);

    // A file that is not ours at all is left untouched: the cache stays
    // unbound (cold, in-memory) and the run still succeeds.
    let foreign = dir.join("foreign.txt");
    let payload = "someone-elses-journal v9\npayload line\n";
    std::fs::write(&foreign, payload).unwrap();
    let cold = EvalCache::shared();
    cold.bind_sidecar(&foreign)
        .expect("foreign sidecar must not error");
    assert!(
        !cold.is_bound(),
        "foreign file must leave the cache unbound"
    );
    let front = ClrEarly::new(&graph, &platform)
        .unwrap()
        .with_cache(Arc::clone(&cold))
        .run(&CampaignPlan::fc(), &budget)
        .unwrap();
    assert_bit_identical(&baseline, &front);
    assert_eq!(
        std::fs::read_to_string(&foreign).unwrap(),
        payload,
        "foreign file must never be appended to"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A legacy problem that implements only the panicking `evaluate`: the
/// default `try_evaluate` must forward it unchanged, and the problem must
/// self-report that it has no native error channel.
struct LegacySphere;

impl Problem for LegacySphere {
    type Genome = Vec<f64>;

    fn objective_count(&self) -> usize {
        1
    }

    fn random_genome(&self, rng: &mut dyn RngCore) -> Vec<f64> {
        vec![rng.next_u32() as f64 / u32::MAX as f64; 2]
    }

    fn evaluate(&self, genome: &Vec<f64>) -> Evaluation {
        Evaluation::feasible(vec![genome.iter().map(|x| x * x).sum()])
    }
}

#[test]
fn default_try_evaluate_wraps_the_legacy_path() {
    let problem = LegacySphere;
    assert!(!problem.reports_errors());
    let eval = problem
        .try_evaluate(&vec![3.0, 4.0])
        .expect("legacy evaluation succeeds");
    assert_eq!(eval.objectives, vec![25.0]);
    assert!(eval.is_feasible());

    // The typed channel is what SystemProblem overrides natively; the
    // error type it reports is ordinary and cloneable.
    let err = EvalError::new("bad genome");
    assert_eq!(err.clone().message(), "bad genome");
    assert_eq!(err.to_string(), "bad genome");
}

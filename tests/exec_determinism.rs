//! Integration tests for the deterministic parallel evaluation engine:
//! worker count must never change results — not on the ZDT benchmark
//! problems, not in a fcCLR methodology run, and not across a
//! kill/resume cycle whose halves use different pool sizes. Also covers
//! the checkpoint-rotation and quarantine-sidecar plumbing end to end.

use std::path::PathBuf;

use clrearly::core::apps;
use clrearly::core::methodology::{ClrEarly, FrontResult, StageBudget};
use clrearly::core::resilience::{
    quarantine_sidecar_path, rotated_checkpoint_path, write_quarantine_sidecar, FallibleProblem,
    ResilientProblem,
};
use clrearly::core::CampaignPlan;
use clrearly::core::{DseError, RunOutcome, RunSupervisor, SupervisorConfig};
use clrearly::exec::{ExecPool, Executor, RunTelemetry};
use clrearly::moea::test_problems::{Zdt1, Zdt2, ZdtVariation};
use clrearly::moea::{Evaluation, Nsga2, Nsga2Config, Problem, Spea2, Spea2Config};

/// A throw-away directory per test, so sidecar/rotation files cannot
/// interfere across concurrently running tests.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clre-exec-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn bits(front: &[Vec<f64>]) -> Vec<Vec<u64>> {
    front
        .iter()
        .map(|p| p.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn assert_same_front(a: &FrontResult, b: &FrontResult, what: &str) {
    assert_eq!(a.front().len(), b.front().len(), "{what}: front sizes");
    for (pa, pb) in a.front().iter().zip(b.front()) {
        assert_eq!(pa.genome, pb.genome, "{what}: genomes");
        assert_eq!(
            bits(std::slice::from_ref(&pa.objectives)),
            bits(std::slice::from_ref(&pb.objectives)),
            "{what}: objectives"
        );
    }
    assert_eq!(a.evaluations, b.evaluations, "{what}: evaluation counts");
}

#[test]
fn zdt_fronts_bitwise_identical_across_worker_counts() {
    // NSGA-II on ZDT1.
    let serial = Nsga2::new(
        Zdt1::new(8),
        ZdtVariation,
        Nsga2Config::new(24, 12).with_seed(5),
    )
    .run();
    for workers in [1usize, 2, 8] {
        let exec = Executor::new(ExecPool::new(workers));
        let ga = Nsga2::new(
            Zdt1::new(8),
            ZdtVariation,
            Nsga2Config::new(24, 12).with_seed(5),
        );
        let par = ga.run_with(&exec);
        assert_eq!(
            bits(&serial.front_objectives()),
            bits(&par.front_objectives()),
            "ZDT1/NSGA-II diverged at {workers} workers"
        );
        assert_eq!(serial.evaluations, par.evaluations);
    }

    // SPEA2 on ZDT2, through the step-wise state API's parallel variant.
    let serial = Spea2::new(
        Zdt2::new(8),
        ZdtVariation,
        Spea2Config::new(20, 10).with_seed(5),
    )
    .run();
    for workers in [1usize, 2, 8] {
        let exec = Executor::new(ExecPool::new(workers));
        let ga = Spea2::new(
            Zdt2::new(8),
            ZdtVariation,
            Spea2Config::new(20, 10).with_seed(5),
        );
        let par = ga.run_with(&exec);
        assert_eq!(
            bits(&serial.front_objectives()),
            bits(&par.front_objectives()),
            "ZDT2/SPEA2 diverged at {workers} workers"
        );
    }
}

#[test]
fn fcclr_run_bitwise_identical_across_worker_counts() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let budget = StageBudget::smoke_test();

    let serial = ClrEarly::new(&graph, &platform)
        .unwrap()
        .run(&CampaignPlan::fc(), &budget)
        .unwrap();
    for workers in [2usize, 8] {
        let parallel = ClrEarly::new(&graph, &platform)
            .unwrap()
            .with_executor(Executor::new(ExecPool::new(workers)))
            .run(&CampaignPlan::fc(), &budget)
            .unwrap();
        assert_same_front(&serial, &parallel, &format!("fcCLR at {workers} workers"));
    }
}

#[test]
fn parallel_kill_resume_with_different_worker_counts_reproduces_front() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let budget = StageBudget::smoke_test().with_seed(7);
    let dir = scratch_dir("kill-resume");
    let ckpt = dir.join("run.ckpt");

    // Uninterrupted serial baseline.
    let baseline = ClrEarly::new(&graph, &platform)
        .unwrap()
        .run(&CampaignPlan::proposed(), &budget)
        .unwrap();

    // Kill a 4-worker run mid-generation of the seeded fc stage…
    let dse4 = ClrEarly::new(&graph, &platform)
        .unwrap()
        .with_executor(Executor::new(ExecPool::new(4)));
    let sup = RunSupervisor::new(SupervisorConfig::new(&ckpt)).with_interrupt_at(1, 4);
    match dse4
        .run_supervised(&CampaignPlan::proposed(), &budget, &sup)
        .unwrap()
    {
        RunOutcome::Interrupted { stage, generation } => {
            assert_eq!((stage, generation), (1, 4));
        }
        RunOutcome::Complete(_) => panic!("expected an interrupted run"),
    }

    // …and resume under a *different* pool size. Checkpoints carry
    // nothing thread-dependent, so the front must still be identical.
    let dse2 = ClrEarly::new(&graph, &platform)
        .unwrap()
        .with_executor(Executor::new(ExecPool::new(2)));
    let resumed = dse2
        .resume_supervised(&budget, &RunSupervisor::new(SupervisorConfig::new(&ckpt)))
        .unwrap()
        .expect_complete();
    assert_same_front(&baseline, &resumed, "kill/resume across pool sizes");
    assert_eq!(resumed.health.resumed_from_generation, Some(4));
    assert!(!ckpt.exists(), "checkpoint not cleaned up");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_run_rotates_checkpoints_and_prunes_on_completion() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).unwrap();
    let budget = StageBudget::smoke_test();
    let dir = scratch_dir("rotation");
    let ckpt = dir.join("run.ckpt");
    let dse = ClrEarly::new(&graph, &platform)
        .unwrap()
        .with_executor(Executor::new(ExecPool::new(2)));

    // Interrupt at generation 3 with keep=3: generations 1..=3 were
    // saved, so the newest plus two rotation slots must be on disk.
    let config = SupervisorConfig::new(&ckpt).with_keep_checkpoints(3);
    let sup = RunSupervisor::new(config.clone()).with_interrupt_at(0, 3);
    match dse
        .run_supervised(&CampaignPlan::fc(), &budget, &sup)
        .unwrap()
    {
        RunOutcome::Interrupted { stage, generation } => {
            assert_eq!((stage, generation), (0, 3));
        }
        RunOutcome::Complete(_) => panic!("expected an interrupted run"),
    }
    assert!(ckpt.exists(), "newest checkpoint missing");
    assert!(
        rotated_checkpoint_path(&ckpt, 1).exists(),
        "slot .1 missing"
    );
    assert!(
        rotated_checkpoint_path(&ckpt, 2).exists(),
        "slot .2 missing"
    );
    assert!(
        !rotated_checkpoint_path(&ckpt, 3).exists(),
        "slot .3 must be pruned (keep=3)"
    );

    // A clean run leaves neither checkpoints nor a quarantine sidecar.
    let resumed = dse
        .resume_supervised(&budget, &RunSupervisor::new(config))
        .unwrap()
        .expect_complete();
    assert!(resumed.health.is_clean());
    for n in 1..=3 {
        assert!(
            !rotated_checkpoint_path(&ckpt, n).exists(),
            "rotation slot .{n} not pruned after completion"
        );
    }
    assert!(!ckpt.exists(), "checkpoint not cleaned up");
    assert!(
        !quarantine_sidecar_path(&ckpt).exists(),
        "clean run must not leave a quarantine sidecar"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A problem that cannot evaluate one genome in eight, for exercising the
/// quarantine triage path under the parallel engine.
struct FlakyEvaluator;

impl Problem for FlakyEvaluator {
    type Genome = u32;

    fn objective_count(&self) -> usize {
        2
    }

    fn random_genome(&self, rng: &mut dyn rand::RngCore) -> u32 {
        rng.next_u32() % 64
    }

    fn evaluate(&self, genome: &u32) -> Evaluation {
        match FallibleProblem::try_evaluate(self, genome) {
            Ok(eval) => eval,
            Err(e) => panic!("genome evaluation failed: {e}"),
        }
    }
}

impl FallibleProblem for FlakyEvaluator {
    fn try_evaluate(&self, genome: &u32) -> Result<Evaluation, DseError> {
        if genome.is_multiple_of(8) {
            return Err(DseError::InvalidConfig {
                what: "injected evaluation failure",
            });
        }
        let x = f64::from(*genome);
        Ok(Evaluation::feasible(vec![x, 64.0 - x]))
    }
}

struct Step;

impl clrearly::moea::Variation<u32> for Step {
    fn crossover(&self, a: &u32, b: &u32, _rng: &mut dyn rand::RngCore) -> (u32, u32) {
        ((a + b) / 2, a.abs_diff(*b))
    }

    fn mutate(&self, genome: &mut u32, rng: &mut dyn rand::RngCore) {
        *genome = (*genome + 1 + rng.next_u32() % 5) % 64;
    }
}

#[test]
fn parallel_quarantine_feeds_sidecar_and_telemetry() {
    let dir = scratch_dir("sidecar");
    let ckpt = dir.join("run.ckpt");
    let resilient = ResilientProblem::new(FlakyEvaluator);
    let health = resilient.health();
    let quarantine = resilient.quarantine_log();

    let sink = RunTelemetry::sink();
    let exec = Executor::new(ExecPool::new(4))
        .with_label("flaky")
        .with_telemetry(sink.clone());
    let ga = Nsga2::new(resilient, Step, Nsga2Config::new(16, 6).with_seed(3));
    let result = ga.run_with(&exec);
    assert!(!result.front().is_empty());

    // The failures were recorded even though evaluation ran on a pool.
    let h = health.lock().unwrap().clone();
    assert!(h.quarantined > 0, "no quarantines under parallel engine");
    exec.annotate_health(h.quarantined, h.degraded_analyses);

    // Sidecar: one `quarantine-v1` line per quarantined candidate.
    let records = quarantine.lock().unwrap().clone();
    assert_eq!(records.len(), h.quarantined);
    let sidecar = quarantine_sidecar_path(&ckpt);
    write_quarantine_sidecar(&sidecar, &records).unwrap();
    let text = std::fs::read_to_string(&sidecar).unwrap();
    assert_eq!(text.lines().count(), records.len());
    assert!(text
        .lines()
        .all(|l| l.starts_with("quarantine-v1 error=") && l.contains(" genome=")));

    // Telemetry: one record per batch (init + 6 generations), totals add
    // up, and the annotated quarantine count landed on the last record.
    let t = sink.lock().unwrap();
    assert_eq!(t.records().len(), 7);
    assert_eq!(t.total_evaluations(), result.evaluations);
    assert_eq!(t.records().last().unwrap().quarantined, h.quarantined);
    assert!(t.trace().contains("phase=flaky"));
    let _ = std::fs::remove_dir_all(&dir);
}

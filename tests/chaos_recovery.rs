//! Fixed-seed chaos-recovery integration tests: a supervised fcCLR run
//! under an evaluation-fault storm — injected panics, typed errors,
//! NaN-poisoned objectives, stalls past the deadline — plus
//! deterministic worker death must recover the exact front of the
//! fault-free run, at one worker and at four, and the same seed must
//! reproduce the same fault schedule and telemetry counters.
//!
//! The heavier end-to-end storm (mid-run interrupt, sidecar corruption,
//! cold resume) lives in the `chaos` bench; these tests pin the core
//! recovery contract with a seconds-long budget.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use clrearly::chaos::{DeathPlan, FaultPlan};
use clrearly::core::apps;
use clrearly::core::methodology::{ClrEarly, FrontResult, StageBudget};
use clrearly::core::resilience::BackoffPolicy;
use clrearly::core::CampaignPlan;
use clrearly::core::{RunSupervisor, SupervisorConfig};
use clrearly::exec::{ExecPool, Executor};

const STORM_SEED: u64 = 0x5EED;

/// A hot storm: roughly one genome in three draws some fault. All kinds
/// fire on the first attempt only, so every fault is recoverable.
fn storm() -> FaultPlan {
    FaultPlan::new(STORM_SEED)
        .with_panic_ppm(120_000)
        .with_error_ppm(120_000)
        .with_poison_ppm(120_000)
        .with_stall_ppm(60_000, 120)
}

fn checkpoint_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("clre-chaos-rec-{}-{name}.ckpt", std::process::id()))
}

/// A supervisor with every hardening knob on: retries, per-evaluation
/// deadline, deterministic backoff, and the storm injector.
fn storm_supervisor(name: &str) -> RunSupervisor {
    RunSupervisor::new(
        SupervisorConfig::new(checkpoint_path(name))
            .with_max_retries(2)
            .with_eval_deadline(Duration::from_millis(60))
            .with_backoff(BackoffPolicy::new(1, 8, STORM_SEED)),
    )
    .with_fault_injector(Arc::new(storm()))
}

/// An executor whose pool deterministically loses workers mid-batch.
fn dying_executor(workers: usize) -> Executor {
    Executor::new(ExecPool::new(workers).with_death_plan(DeathPlan::new(STORM_SEED, 80_000)))
}

fn assert_same_front(a: &FrontResult, b: &FrontResult) {
    assert_eq!(a.front().len(), b.front().len(), "front sizes differ");
    for (pa, pb) in a.front().iter().zip(b.front()) {
        assert_eq!(pa.genome, pb.genome, "front genomes differ");
        assert_eq!(pa.objectives, pb.objectives, "front objectives differ");
    }
}

fn stormed_run(name: &str, workers: usize) -> FrontResult {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).expect("sobel app");
    ClrEarly::new(&graph, &platform)
        .expect("tDSE succeeds")
        .with_executor(dying_executor(workers))
        .run_supervised(
            &CampaignPlan::fc(),
            &StageBudget::smoke_test(),
            &storm_supervisor(name),
        )
        .expect("stormed run completes")
        .expect_complete()
}

#[test]
fn storm_recovers_bit_identical_front_at_one_and_four_workers() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).expect("sobel app");
    let clean = ClrEarly::new(&graph, &platform)
        .expect("tDSE succeeds")
        .run(&CampaignPlan::fc(), &StageBudget::smoke_test())
        .expect("clean run completes");

    let w1 = stormed_run("w1", 1);
    let w4 = stormed_run("w4", 4);

    // Every fault fires on attempt 0 only, so retries recover the exact
    // evaluation the clean run computed — the fronts are bit-identical.
    assert_same_front(&clean, &w1);
    assert_same_front(&clean, &w4);

    // The storm must actually have hit, and every hit must have healed.
    assert!(w1.health.injected > 0, "storm never fired");
    assert!(w1.health.recovered > 0, "no fault recovered");
    assert!(w1.health.retries > 0, "no retry happened");
    assert_eq!(w1.health.quarantined, 0, "a recoverable fault quarantined");

    // The fault schedule is content-addressed, never call-order
    // addressed: the counters are identical across worker counts.
    assert_eq!(w1.health, w4.health, "schedule depends on worker count");
}

fn stormed_lifetime_run(name: &str, workers: usize) -> FrontResult {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).expect("sobel app");
    let scenario = clrearly::core::Scenario::parse("lifetime:5000").expect("scenario");
    ClrEarly::with_scenario(&graph, &platform, &scenario)
        .expect("tDSE succeeds")
        .with_executor(dying_executor(workers))
        .run_supervised(
            &CampaignPlan::fc(),
            &StageBudget::smoke_test(),
            &storm_supervisor(name),
        )
        .expect("stormed run completes")
        .expect_complete()
}

/// The hardened recovery paths hold under the permanent-fault scenario
/// too: a storm over a lifetime campaign — aging hazards folded into
/// every chain, tri-objective fronts — recovers the fault-free front
/// bit-identically at one and four workers.
#[test]
fn storm_recovers_permanent_fault_campaign_bit_identically() {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).expect("sobel app");
    let scenario = clrearly::core::Scenario::parse("lifetime:5000").expect("scenario");
    let clean = ClrEarly::with_scenario(&graph, &platform, &scenario)
        .expect("tDSE succeeds")
        .run(&CampaignPlan::fc(), &StageBudget::smoke_test())
        .expect("clean run completes");

    let w1 = stormed_lifetime_run("life-w1", 1);
    let w4 = stormed_lifetime_run("life-w4", 4);
    assert_same_front(&clean, &w1);
    assert_same_front(&clean, &w4);
    assert!(w1.health.injected > 0, "storm never fired");
    assert!(w1.health.recovered > 0, "no fault recovered");
    assert_eq!(w1.health, w4.health, "schedule depends on worker count");

    // And the scenario really changed the physics: the recovered front
    // is not the transient front under the same plan and seed.
    let transient = ClrEarly::new(&graph, &platform)
        .expect("tDSE succeeds")
        .run(&CampaignPlan::fc(), &StageBudget::smoke_test())
        .expect("transient run completes");
    let same_front = clean.front().len() == transient.front().len()
        && clean
            .front()
            .iter()
            .zip(transient.front())
            .all(|(a, b)| a.objectives == b.objectives);
    assert!(!same_front, "lifetime scenario must move the fcCLR front");
}

#[test]
fn same_seed_reproduces_fault_schedule_and_counters() {
    let first = stormed_run("replay-a", 1);
    let second = stormed_run("replay-b", 1);
    assert_same_front(&first, &second);
    assert_eq!(
        first.health, second.health,
        "same seed must reproduce every telemetry counter"
    );
}

//! Property-based tests of the scheduler and QoS estimator on randomly
//! generated TGFF-style applications and random valid mappings.

use clrearly::model::platform::paper_platform;
use clrearly::model::qos::TaskMetrics;
use clrearly::model::{PeId, TaskGraph, TaskId};
use clrearly::sched::{list_schedule, Mapping, QosEvaluator};
use clrearly::tgff::TgffConfig;
use proptest::prelude::*;

fn make_graph(tasks: usize, seed: u64) -> TaskGraph {
    clrearly::tgff::generate(&TgffConfig::new(tasks).with_type_count(4), seed, |ty| {
        vec![clrearly::model::BaseImpl::new(
            format!("syn{ty}"),
            clrearly::model::PeTypeId::new(0),
            1.0e5,
            1.0e-9,
        )]
    })
    .expect("generator produces valid graphs")
}

fn make_mapping(graph: &TaskGraph, pe_picks: &[u8], times: &[u16], errs: &[u16]) -> Mapping {
    let n = graph.task_count();
    let pes: Vec<PeId> = (0..n)
        .map(|i| PeId::new((pe_picks[i % pe_picks.len()] % 6) as u32))
        .collect();
    let metrics: Vec<TaskMetrics> = (0..n)
        .map(|i| {
            let t = 1.0e-5 + times[i % times.len()] as f64 * 1.0e-7;
            let e = errs[i % errs.len()] as f64 / 65536.0 * 0.2;
            TaskMetrics {
                min_exec_time: t,
                avg_exec_time: t,
                error_prob: e,
                eta: 3.0e8,
                power: 0.5 + (i % 3) as f64 * 0.25,
                energy: t,
                peak_temp: 330.0,
            }
        })
        .collect();
    // Priority: reversed index order (worst case for naive schedulers).
    let priority: Vec<TaskId> = (0..n as u32).rev().map(TaskId::new).collect();
    Mapping::new(pes, metrics, priority)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_respects_dependencies_and_exclusivity(
        tasks in 2usize..40,
        seed in 0u64..500,
        pe_picks in prop::collection::vec(0u8..6, 1..8),
        times in prop::collection::vec(1u16..1000, 1..8),
        errs in prop::collection::vec(0u16..65535, 1..8),
    ) {
        let graph = make_graph(tasks, seed);
        let platform = paper_platform();
        let mapping = make_mapping(&graph, &pe_picks, &times, &errs);
        let schedule = list_schedule(&graph, &platform, &mapping).expect("valid mapping");

        // Dependencies.
        for &(f, t) in graph.edges() {
            prop_assert!(schedule.interval(t).start >= schedule.interval(f).end - 1e-12);
        }
        // PE exclusivity.
        for a in schedule.intervals() {
            for b in schedule.intervals() {
                if a.task != b.task && a.pe == b.pe {
                    prop_assert!(a.end <= b.start + 1e-12 || b.end <= a.start + 1e-12);
                }
            }
        }
        // Makespan equals the latest end.
        let max_end = schedule.intervals().iter().map(|i| i.end).fold(0.0, f64::max);
        prop_assert!((schedule.makespan() - max_end).abs() < 1e-15);
    }

    #[test]
    fn makespan_bounds_hold(
        tasks in 2usize..30,
        seed in 0u64..200,
        times in prop::collection::vec(1u16..1000, 1..8),
    ) {
        let graph = make_graph(tasks, seed);
        let platform = paper_platform();
        let mapping = make_mapping(&graph, &[0, 1, 2, 3, 4, 5], &times, &[0]);
        let schedule = list_schedule(&graph, &platform, &mapping).expect("valid mapping");
        let total: f64 = (0..tasks)
            .map(|i| mapping.metrics_of(TaskId::new(i as u32)).avg_exec_time)
            .sum();
        let longest = (0..tasks)
            .map(|i| mapping.metrics_of(TaskId::new(i as u32)).avg_exec_time)
            .fold(0.0, f64::max);
        // Lower bound: the longest task; upper bound: full serialization.
        prop_assert!(schedule.makespan() >= longest - 1e-12);
        prop_assert!(schedule.makespan() <= total + 1e-12);
    }

    #[test]
    fn qos_metrics_are_physical(
        tasks in 2usize..30,
        seed in 0u64..200,
        pe_picks in prop::collection::vec(0u8..6, 1..8),
        errs in prop::collection::vec(0u16..60000, 1..8),
    ) {
        let graph = make_graph(tasks, seed);
        let platform = paper_platform();
        let mapping = make_mapping(&graph, &pe_picks, &[100, 300, 700], &errs);
        let q = QosEvaluator::new(&platform).evaluate(&graph, &mapping).expect("valid");
        prop_assert!((0.0..=1.0).contains(&q.error_prob));
        prop_assert!(q.mttf > 0.0);
        prop_assert!(q.energy > 0.0);
        // Peak power is at most the sum and at least the max of powers.
        let powers: Vec<f64> = (0..tasks)
            .map(|i| mapping.metrics_of(TaskId::new(i as u32)).power)
            .collect();
        let sum: f64 = powers.iter().sum();
        let max = powers.iter().copied().fold(0.0, f64::max);
        prop_assert!(q.peak_power <= sum + 1e-9);
        prop_assert!(q.peak_power >= max - 1e-9);
    }

    #[test]
    fn serializing_onto_one_pe_never_improves_makespan(
        tasks in 2usize..25,
        seed in 0u64..200,
    ) {
        let graph = make_graph(tasks, seed);
        let platform = paper_platform();
        let spread = make_mapping(&graph, &[0, 1, 2, 3, 4, 5], &[500], &[0]);
        let singled = make_mapping(&graph, &[2], &[500], &[0]);
        let ev = QosEvaluator::new(&platform);
        let q_spread = ev.evaluate(&graph, &spread).expect("valid");
        let q_single = ev.evaluate(&graph, &singled).expect("valid");
        prop_assert!(q_single.makespan >= q_spread.makespan - 1e-12);
        // Serial execution has unit concurrency: peak power == max power.
        let max_power = (0..tasks)
            .map(|i| singled.metrics_of(TaskId::new(i as u32)).power)
            .fold(0.0, f64::max);
        prop_assert!((q_single.peak_power - max_power).abs() < 1e-9);
    }

    #[test]
    fn error_prob_monotone_in_any_task(
        tasks in 2usize..20,
        seed in 0u64..100,
        which in 0usize..20,
        bump in 1u16..20000,
    ) {
        let graph = make_graph(tasks, seed);
        let platform = paper_platform();
        let which = which % tasks;
        let base_errs: Vec<u16> = vec![1000; tasks];
        let mut bumped = base_errs.clone();
        bumped[which] = bumped[which].saturating_add(bump);
        let ev = QosEvaluator::new(&platform);
        let q0 = ev
            .evaluate(&graph, &make_mapping(&graph, &[0, 1], &[100], &base_errs))
            .expect("valid");
        let q1 = ev
            .evaluate(&graph, &make_mapping(&graph, &[0, 1], &[100], &bumped))
            .expect("valid");
        prop_assert!(q1.error_prob >= q0.error_prob - 1e-12);
    }
}

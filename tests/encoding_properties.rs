//! Property-based tests of the GA encoding: every operator sequence over
//! random graphs must preserve permutation validity and choice
//! compatibility, and decoding must always produce schedulable mappings.

use clrearly::core::encoding::{ChoiceMode, ClrVariation, Codec, Genome};
use clrearly::core::tdse::{build_library, TdseConfig};
use clrearly::model::platform::paper_platform;
use clrearly::moea::Variation;
use clrearly::profile::SyntheticCharacterizer;
use clrearly::sched::QosEvaluator;
use clrearly::tgff::TgffConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn is_valid(codec: &Codec<'_>, genome: &Genome) -> bool {
    let n = codec.graph().task_count();
    let mut seen = vec![false; n];
    for g in genome {
        if g.task.index() >= n || seen[g.task.index()] {
            return false;
        }
        seen[g.task.index()] = true;
        let ty = codec.graph().tasks()[g.task.index()].task_type();
        if codec
            .choices(ty, g.pe)
            .binary_search(&(g.choice as usize))
            .is_err()
        {
            return false;
        }
    }
    genome.len() == n
}

proptest! {
    // Library construction dominates runtime; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn operator_chains_preserve_validity(
        tasks in 2usize..20,
        graph_seed in 0u64..100,
        rng_seed in 0u64..1000,
        ops in prop::collection::vec(0u8..3, 1..25),
        pareto in prop::bool::ANY,
    ) {
        let platform = paper_platform();
        let ch = SyntheticCharacterizer::new(5);
        let graph = clrearly::tgff::generate(
            &TgffConfig::new(tasks).with_type_count(3),
            graph_seed,
            |ty| ch.impls_for_type(ty, &platform),
        ).expect("generator");
        let library = build_library(&graph, &platform, &TdseConfig::new())
            .expect("library");
        let mode = if pareto { ChoiceMode::ParetoFiltered } else { ChoiceMode::Full };
        let codec = Codec::new(&graph, &platform, &library, mode).expect("codec");
        let var = ClrVariation::new(&codec);
        let mut rng = StdRng::seed_from_u64(rng_seed);

        let mut a = codec.random_genome(&mut rng);
        let mut b = codec.random_genome(&mut rng);
        prop_assert!(is_valid(&codec, &a));
        prop_assert!(is_valid(&codec, &b));

        for &op in &ops {
            match op {
                0 => {
                    let (c1, c2) = var.crossover(&a, &b, &mut rng);
                    a = c1;
                    b = c2;
                }
                1 => var.mutate(&mut a, &mut rng),
                _ => var.mutate(&mut b, &mut rng),
            }
            prop_assert!(is_valid(&codec, &a), "a invalidated by op {op}");
            prop_assert!(is_valid(&codec, &b), "b invalidated by op {op}");
        }

        // Decoded mappings always schedule and yield physical metrics.
        let mapping = codec.decode(&a);
        let q = QosEvaluator::new(&platform)
            .evaluate(&graph, &mapping)
            .expect("decoded mapping schedules");
        prop_assert!(q.makespan > 0.0);
        prop_assert!((0.0..=1.0).contains(&q.error_prob));
    }

    #[test]
    fn pareto_mode_choices_subset_of_full(
        tasks in 2usize..12,
        graph_seed in 0u64..50,
    ) {
        let platform = paper_platform();
        let ch = SyntheticCharacterizer::new(5);
        let graph = clrearly::tgff::generate(
            &TgffConfig::new(tasks).with_type_count(3),
            graph_seed,
            |ty| ch.impls_for_type(ty, &platform),
        ).expect("generator");
        let library = build_library(&graph, &platform, &TdseConfig::new())
            .expect("library");
        let pf = Codec::new(&graph, &platform, &library, ChoiceMode::ParetoFiltered)
            .expect("pf codec");
        let fc = Codec::new(&graph, &platform, &library, ChoiceMode::Full)
            .expect("fc codec");
        for task in graph.tasks() {
            for pe in platform.pes() {
                let small = pf.choices(task.task_type(), pe.id());
                let big = fc.choices(task.task_type(), pe.id());
                for c in small {
                    prop_assert!(big.contains(c), "pf choice {c} not in full set");
                }
            }
        }
    }
}

//! Multi-tenant cache sharing without the server: two campaigns on the
//! same platform run concurrently against one shared [`EvalCache`], and
//! (a) each front stays bit-identical to the campaign run alone on a
//! private cache, while (b) the shared cache answers strictly more L1
//! task-analysis lookups than the two isolated runs combined — the
//! cross-tenant warm-start the `clre-serve` server builds on.

use std::sync::Arc;

use clrearly::core::apps;
use clrearly::core::cache::EvalCache;
use clrearly::core::methodology::{ClrEarly, FrontResult, StageBudget};
use clrearly::core::tdse::TdseConfig;
use clrearly::core::CampaignPlan;
use clrearly::exec::{ExecPool, Executor};

/// Fronts must agree to the bit: same genomes, same objective bit
/// patterns (stricter than `==`, which would let `-0.0` pass for `0.0`).
fn assert_bit_identical(a: &FrontResult, b: &FrontResult) {
    assert_eq!(a.front().len(), b.front().len(), "front sizes differ");
    for (pa, pb) in a.front().iter().zip(b.front()) {
        assert_eq!(pa.genome, pb.genome, "front genomes differ");
        assert_eq!(pa.objectives.len(), pb.objectives.len());
        for (x, y) in pa.objectives.iter().zip(&pb.objectives) {
            assert_eq!(x.to_bits(), y.to_bits(), "objective bits differ");
        }
    }
}

/// Runs `plan` against the shared `cache` — both as the tDSE analysis
/// cache and the fitness cache, exactly as the server wires it.
fn run_with_cache(
    graph: &clrearly::model::TaskGraph,
    platform: &clrearly::model::Platform,
    cache: &Arc<EvalCache>,
    plan: &CampaignPlan,
    budget: &StageBudget,
) -> FrontResult {
    ClrEarly::with_tdse_config(
        graph,
        platform,
        TdseConfig::default().with_eval_cache(Arc::clone(cache)),
    )
    .expect("tDSE succeeds")
    .with_executor(Executor::new(ExecPool::new(2)))
    .with_cache(Arc::clone(cache))
    .run(plan, budget)
    .expect("campaign completes")
}

#[test]
fn concurrent_campaigns_share_l1_analysis_entries_without_front_drift() {
    let (platform, graph) = apps::synthetic_app(12, 3).expect("synthetic app");
    let budget = StageBudget::new(8, 4).with_seed(11);
    let plans = [CampaignPlan::fc(), CampaignPlan::pf()];

    // Isolated baselines: each campaign alone on a private cache. The
    // hit counts these accumulate are pure self-hits — the bar the
    // shared run must clear to prove cross-tenant reuse.
    let mut isolated_fronts = Vec::new();
    let mut isolated_hits = 0u64;
    for plan in &plans {
        let cache = EvalCache::shared();
        isolated_fronts.push(run_with_cache(&graph, &platform, &cache, plan, &budget));
        isolated_hits += cache.analysis_counts().hits;
    }

    // The shared run: both campaigns concurrently against one cache,
    // each building its own chain library — the second library build is
    // answered from the first tenant's L1 entries.
    let shared = EvalCache::shared();
    let shared_fronts = std::thread::scope(|scope| {
        let handles = plans
            .each_ref()
            .map(|plan| scope.spawn(|| run_with_cache(&graph, &platform, &shared, plan, &budget)));
        handles.map(|h| h.join().expect("campaign thread"))
    });

    for (isolated, concurrent) in isolated_fronts.iter().zip(&shared_fronts) {
        assert_bit_identical(isolated, concurrent);
    }
    let shared_hits = shared.analysis_counts().hits;
    assert!(
        shared_hits > isolated_hits,
        "cross-tenant L1 hits required: shared={shared_hits} vs isolated-sum={isolated_hits}"
    );

    // And sharing saves work, not just lookups: fewer fresh analysis
    // inserts than two isolated runs would have performed in total.
    let isolated_inserts: u64 = {
        let cache = EvalCache::shared();
        let _ = run_with_cache(&graph, &platform, &cache, &plans[0], &budget);
        2 * cache.analysis_counts().inserts
    };
    assert!(
        shared.analysis_counts().inserts < isolated_inserts,
        "shared cache must dedupe analysis inserts across tenants"
    );
}

//! Cross-validation of the analytical task-level models against the
//! Monte-Carlo fault-injection simulator: for configurations drawn from
//! the real DSE catalogs, the empirical error rate and mean execution
//! time must match the Markov-chain predictions used by the optimizer.

use clrearly::core::apps;
use clrearly::core::tdse::{chain_params, evaluate_candidate};
use clrearly::model::reliability::{AswMethod, ClrConfig, HwMethod, SswMethod};
use clrearly::model::PeTypeId;
use clrearly::profile::{ProfileModel, SyntheticCharacterizer};
use clrearly::sim::TaskSimulator;

const RUNS: usize = 40_000;

fn configs_under_test() -> Vec<ClrConfig> {
    vec![
        ClrConfig::unprotected(),
        ClrConfig::new(HwMethod::Tmr, SswMethod::None, AswMethod::None),
        ClrConfig::new(HwMethod::None, SswMethod::Retry, AswMethod::None),
        ClrConfig::new(
            HwMethod::None,
            SswMethod::Checkpoint { intervals: 3 },
            AswMethod::None,
        ),
        ClrConfig::new(HwMethod::None, SswMethod::None, AswMethod::CodeTripling),
        ClrConfig::new(
            HwMethod::PartialTmr,
            SswMethod::Checkpoint { intervals: 2 },
            AswMethod::Checksum,
        ),
        ClrConfig::new(
            HwMethod::Hardening,
            SswMethod::Retry,
            AswMethod::HammingCorrection,
        ),
    ]
}

#[test]
fn analytic_metrics_match_fault_injection() {
    let platform = apps::paper_platform();
    let ch = SyntheticCharacterizer::new(42);
    let imp = ch.impls_for_type(0, &platform)[0].clone();
    let pe_type = platform.pe_type(PeTypeId::new(0)).expect("type exists");
    // Undervolted mode → high fault rate → the interesting regime.
    let mode = &pe_type.dvfs_modes()[2];
    let profile = ProfileModel::default();

    for clr in configs_under_test() {
        let analytic =
            evaluate_candidate(&imp, pe_type, mode, &clr, &profile, None).expect("analyzable");
        let params = chain_params(&imp, pe_type, mode, &clr, &profile, None);
        let empirical = TaskSimulator::new(params).run(RUNS, 0xC0FFEE);

        let sigma = (analytic.error_prob * (1.0 - analytic.error_prob) / RUNS as f64)
            .sqrt()
            .max(1e-4);
        assert!(
            (empirical.error_rate - analytic.error_prob).abs() < 4.0 * sigma + 2e-4,
            "{clr}: empirical error {} vs analytic {}",
            empirical.error_rate,
            analytic.error_prob
        );
        assert!(
            (empirical.mean_time / analytic.avg_exec_time - 1.0).abs() < 0.02,
            "{clr}: empirical time {} vs analytic {}",
            empirical.mean_time,
            analytic.avg_exec_time
        );
        // Fault-free floor: nothing ever runs faster than MinExT.
        assert!(empirical.mean_time >= analytic.min_exec_time * 0.999);
    }
}

#[test]
fn simulator_ranks_configs_like_the_analysis() {
    // The optimizer's Pareto decisions rest on the *ordering* of error
    // probabilities; check the simulator reproduces that ordering for a
    // protection ladder.
    let platform = apps::paper_platform();
    let ch = SyntheticCharacterizer::new(42);
    let imp = ch.impls_for_type(1, &platform)[0].clone();
    let pe_type = platform.pe_type(PeTypeId::new(0)).expect("type exists");
    let mode = &pe_type.dvfs_modes()[0];
    let profile = ProfileModel::default();

    let ladder = [
        ClrConfig::unprotected(),
        ClrConfig::new(HwMethod::Hardening, SswMethod::None, AswMethod::None),
        ClrConfig::new(HwMethod::Tmr, SswMethod::None, AswMethod::None),
        ClrConfig::new(HwMethod::Tmr, SswMethod::Retry, AswMethod::Checksum),
    ];
    let mut last = f64::MAX;
    for clr in ladder {
        let params = chain_params(&imp, pe_type, mode, &clr, &profile, None);
        let empirical = TaskSimulator::new(params).run(RUNS, 7);
        assert!(
            empirical.error_rate <= last + 2e-3,
            "{clr} broke the protection ordering: {} after {}",
            empirical.error_rate,
            last
        );
        last = empirical.error_rate;
    }
    // The full cross-layer stack is near error-free at nominal voltage.
    assert!(last < 5e-3, "cross-layer floor too high: {last}");
}

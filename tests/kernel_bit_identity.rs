//! Golden-digest oracle for the flat-buffer MOEA selection kernels: the
//! fcCLR and seeded-proposed fronts must stay bit-identical to the
//! pre-kernel implementation (naive Deb sort, per-round SPEA2 truncation)
//! at any worker count.
//!
//! The digests below were captured by running this very test against the
//! repository state *before* the ENS sort / cached-distance truncation /
//! `ObjectiveMatrix` rewrite landed (commit c9ef0c2). Any change to the
//! selection kernels that alters even one objective bit of a reported
//! front trips these constants.

use clrearly::core::apps;
use clrearly::core::methodology::{ClrEarly, FrontResult, StageBudget};
use clrearly::core::CampaignPlan;
use clrearly::exec::{ExecPool, Executor};

/// FNV-1a over the front's objective bit patterns and genome words, in
/// front order — a stricter identity than `==` (distinguishes `-0.0`).
fn front_digest(front: &FrontResult) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut fold = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    fold(front.front().len() as u64);
    for p in front.front() {
        fold(p.objectives.len() as u64);
        for &x in &p.objectives {
            fold(x.to_bits());
        }
        fold(p.genome.len() as u64);
        for g in p.genome.iter() {
            fold(u64::from(u32::from(g.task)));
            fold(u64::from(u32::from(g.pe)));
            fold(u64::from(g.choice));
        }
    }
    h
}

fn run_method(workers: usize, proposed: bool) -> FrontResult {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42).expect("sobel app builds");
    let budget = StageBudget::smoke_test().with_seed(7);
    let dse = ClrEarly::new(&graph, &platform)
        .expect("tDSE succeeds")
        .with_executor(Executor::new(ExecPool::new(workers)));
    if proposed {
        dse.run(&CampaignPlan::proposed(), &budget)
            .expect("proposed runs")
    } else {
        dse.run(&CampaignPlan::fc(), &budget).expect("fcCLR runs")
    }
}

/// Pre-change golden digests (workers are irrelevant to the value — the
/// engine is worker-count-invariant — but both pools are exercised).
const FC_GOLDEN: u64 = 0x5DEA_6B56_3F80_B128;
const PROPOSED_GOLDEN: u64 = 0xA64C_E894_4B8F_397C;

#[test]
fn fc_front_matches_pre_kernel_golden_digest() {
    for workers in [1usize, 4] {
        let d = front_digest(&run_method(workers, false));
        assert_eq!(
            d, FC_GOLDEN,
            "fcCLR front digest {d:#018x} diverged from pre-kernel golden (workers={workers})"
        );
    }
}

#[test]
fn seeded_proposed_front_matches_pre_kernel_golden_digest() {
    for workers in [1usize, 4] {
        let d = front_digest(&run_method(workers, true));
        assert_eq!(
            d, PROPOSED_GOLDEN,
            "proposed front digest {d:#018x} diverged from pre-kernel golden (workers={workers})"
        );
    }
}

//! Property-based tests of the Markov-chain reliability analysis: the
//! general matrix solver must agree with the loop-free closed form, and
//! the physics must be monotone in every masking knob.

use clrearly::markov::closed_form;
use clrearly::markov::clr::{analyze, analyze_spec, ClrChainParams, ClrChainSpec};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ClrChainParams> {
    (
        1.0e-5..2.0e-3f64, // exec_time
        0.0..2000.0f64,    // seu_rate
        0.0..0.99f64,      // m_hw
        0.0..0.5f64,       // m_impl_ssw
        0.0..0.99f64,      // cov_det
        0.0..0.99f64,      // m_tol
        0.0..0.99f64,      // m_asw
        0.0..0.2f64,       // det overhead fraction
        0.0..0.2f64,       // tol overhead fraction
    )
        .prop_map(
            |(exec_time, seu, m_hw, m_impl, cov, m_tol, m_asw, det, tol)| ClrChainParams {
                exec_time,
                seu_rate: seu,
                m_hw,
                m_impl_ssw: m_impl,
                cov_det: cov,
                m_tol,
                m_asw,
                intervals: 1,
                t_det: det * exec_time,
                t_tol: tol * exec_time,
                t_chk: 0.0,
                p_chk_err: 0.0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matrix_solver_matches_closed_form(p in arb_params()) {
        let exact = closed_form::analyze(&p).expect("single-interval closed form");
        let markov = analyze(&p).expect("markov analysis");
        prop_assert!((exact.error_prob - markov.error_prob).abs() < 1e-9,
            "err: {} vs {}", exact.error_prob, markov.error_prob);
        let rel = ((exact.avg_exec_time - markov.avg_exec_time)
            / exact.avg_exec_time).abs();
        prop_assert!(rel < 1e-9, "time: {} vs {}", exact.avg_exec_time, markov.avg_exec_time);
    }

    #[test]
    fn error_prob_is_a_probability(p in arb_params()) {
        let r = analyze(&p).expect("markov analysis");
        prop_assert!((0.0..=1.0).contains(&r.error_prob));
        prop_assert!(r.avg_exec_time >= r.min_exec_time - 1e-12);
        prop_assert!(r.avg_exec_time.is_finite());
    }

    #[test]
    fn hw_masking_monotone(p in arb_params(), bump in 0.001..0.3f64) {
        let base = analyze(&p).expect("base analysis");
        let mut stronger = p;
        stronger.m_hw = (p.m_hw + bump).min(0.999);
        let better = analyze(&stronger).expect("bumped analysis");
        prop_assert!(better.error_prob <= base.error_prob + 1e-12);
    }

    #[test]
    fn asw_masking_monotone(p in arb_params(), bump in 0.001..0.3f64) {
        let base = analyze(&p).expect("base analysis");
        let mut stronger = p;
        stronger.m_asw = (p.m_asw + bump).min(0.999);
        let better = analyze(&stronger).expect("bumped analysis");
        prop_assert!(better.error_prob <= base.error_prob + 1e-12);
    }

    #[test]
    fn seu_rate_monotone_in_error(p in arb_params()) {
        let base = analyze(&p).expect("base analysis");
        let mut harsher = p;
        harsher.seu_rate = p.seu_rate * 2.0 + 10.0;
        let worse = analyze(&harsher).expect("harsher analysis");
        prop_assert!(worse.error_prob >= base.error_prob - 1e-12);
    }

    #[test]
    fn more_intervals_never_lose_time_at_high_fault_rates(
        base in arb_params(),
    ) {
        // With detection+tolerance active and non-trivial fault rates,
        // checkpointing bounds re-execution: avg time with k=4 must not
        // exceed k=1 by more than the checkpoint overhead it adds.
        let p1 = ClrChainParams {
            cov_det: 0.95,
            m_tol: 0.95,
            seu_rate: 2000.0,
            intervals: 1,
            t_chk: 0.01 * base.exec_time,
            ..base
        };
        let p4 = ClrChainParams { intervals: 4, ..p1 };
        let r1 = analyze(&p1).expect("k=1");
        let r4 = analyze(&p4).expect("k=4");
        // k=4 pays 3 extra checkpoints and 3 extra detection residences
        // fault-free (t_det is per inter-checkpoint interval), but each
        // detected error re-executes only a quarter of the work. The
        // deterministic overhead delta bounds any fault-free loss; allow
        // a small slack for recovery-path differences at low fault rates.
        let static_overhead = 3.0 * (p4.t_chk + p4.t_det);
        prop_assert!(
            r4.avg_exec_time <= r1.avg_exec_time * 1.05 + static_overhead + 1e-12,
            "k=4 {} vs k=1 {}", r4.avg_exec_time, r1.avg_exec_time);
        prop_assert!((r4.min_exec_time - (r1.min_exec_time + static_overhead)).abs() < 1e-15);
    }

    #[test]
    fn absorption_probabilities_always_sum_to_one(
        p in arb_params(), intervals in 1u32..5
    ) {
        let p = ClrChainParams { intervals, p_chk_err: 1e-4, t_chk: 0.02 * p.exec_time, ..p };
        let (chain, start) = clrearly::markov::clr::functional_chain(&p).expect("chain");
        let probs = chain.absorption_probabilities(start).expect("absorbing");
        let total: f64 = probs.values().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
    }

    // --- mechanism-aware chain templates -------------------------------

    #[test]
    fn permanent_template_matches_closed_form(
        p in arb_params(), perm_rate in 0.0..2000.0f64
    ) {
        let spec = ClrChainSpec::permanent_aging(p, perm_rate);
        let exact = closed_form::analyze_spec(&spec).expect("permanent closed form");
        let markov = analyze_spec(&spec).expect("permanent markov analysis");
        prop_assert!((exact.error_prob - markov.error_prob).abs() < 1e-9,
            "err: {} vs {}", exact.error_prob, markov.error_prob);
        let rel = ((exact.avg_exec_time - markov.avg_exec_time)
            / exact.avg_exec_time).abs();
        prop_assert!(rel < 1e-9, "time: {} vs {}", exact.avg_exec_time, markov.avg_exec_time);
    }

    #[test]
    fn zero_permanent_rate_is_bit_identical_to_transient(p in arb_params()) {
        // The mechanism layer must not perturb the legacy pipeline: a
        // permanent-aging spec with zero hazard and a plain transient
        // spec both evaluate the exact transient float expressions.
        let legacy = analyze(&p).expect("legacy analysis");
        let zero = analyze_spec(&ClrChainSpec::permanent_aging(p, 0.0)).expect("zero-rate spec");
        let transient = analyze_spec(&ClrChainSpec::transient(p)).expect("transient spec");
        prop_assert_eq!(legacy.error_prob.to_bits(), zero.error_prob.to_bits());
        prop_assert_eq!(legacy.avg_exec_time.to_bits(), zero.avg_exec_time.to_bits());
        prop_assert_eq!(legacy.error_prob.to_bits(), transient.error_prob.to_bits());
        prop_assert_eq!(legacy.avg_exec_time.to_bits(), transient.avg_exec_time.to_bits());
    }

    #[test]
    fn permanent_hazard_monotone_in_error(
        p in arb_params(), rate in 0.0..1000.0f64, bump in 1.0..1000.0f64
    ) {
        let base = analyze_spec(&ClrChainSpec::permanent_aging(p, rate))
            .expect("base permanent analysis");
        let worse = analyze_spec(&ClrChainSpec::permanent_aging(p, rate + bump))
            .expect("aged permanent analysis");
        prop_assert!(worse.error_prob >= base.error_prob - 1e-12,
            "aging must not improve reliability: {} vs {}",
            base.error_prob, worse.error_prob);
        // And the zero-hazard case is the transient floor.
        prop_assert!(base.error_prob >= analyze(&p).expect("transient").error_prob - 1e-12);
    }

    #[test]
    fn software_mitigation_cannot_mask_permanent_faults(
        p in arb_params(), perm_rate in 1.0..2000.0f64,
        cov in 0.0..0.99f64, tol in 0.0..0.99f64, asw in 0.0..0.99f64
    ) {
        // TMR/scrubbing limit: under a pure permanent hazard only the
        // spatial hardware layer (m_HW) masks — retuning every software
        // knob leaves the escape probability unchanged, because
        // checkpointing and ASW coding cannot repair a dead resource.
        let dead = ClrChainParams { seu_rate: 0.0, ..p };
        let base = analyze_spec(&ClrChainSpec::permanent_aging(dead, perm_rate))
            .expect("permanent-only analysis");
        let retuned = ClrChainParams { cov_det: cov, m_tol: tol, m_asw: asw, ..dead };
        let same = analyze_spec(&ClrChainSpec::permanent_aging(retuned, perm_rate))
            .expect("retuned analysis");
        prop_assert!((base.error_prob - same.error_prob).abs() < 1e-12,
            "software knobs moved a permanent-only escape: {} vs {}",
            base.error_prob, same.error_prob);
        // Hardware redundancy, by contrast, strictly helps.
        let voted = ClrChainParams { m_hw: (dead.m_hw + 0.3).min(0.999), ..dead };
        let better = analyze_spec(&ClrChainSpec::permanent_aging(voted, perm_rate))
            .expect("voted analysis");
        prop_assert!(better.error_prob <= base.error_prob + 1e-12);
    }

    #[test]
    fn permanent_absorption_probabilities_sum_to_one(
        p in arb_params(), perm_rate in 0.0..2000.0f64, intervals in 1u32..5
    ) {
        // The checkpointed (multi-interval) permanent template has no
        // closed form, so pin its structural invariant instead: the
        // chain stays absorbing and total absorption mass is one.
        let p = ClrChainParams { intervals, p_chk_err: 1e-4, t_chk: 0.02 * p.exec_time, ..p };
        let spec = ClrChainSpec::permanent_aging(p, perm_rate);
        let (chain, start) =
            clrearly::markov::clr::functional_chain_spec(&spec).expect("permanent chain");
        let probs = chain.absorption_probabilities(start).expect("absorbing");
        let total: f64 = probs.values().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
    }
}

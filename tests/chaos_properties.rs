//! Property-based tests of the hardened recovery paths: arbitrary
//! byte-level damage (bit flips, truncation, torn lines) to any
//! persistence sidecar — checkpoint, evaluation cache, quarantine — must
//! never panic, and must degrade to a defined outcome: an older rotation
//! slot, a cold or partial cache, a typed error, or a skip-and-count.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use clrearly::chaos::corrupt_file;
use clrearly::core::apps;
use clrearly::core::methodology::{ClrEarly, StageBudget};
use clrearly::core::resilience::{
    read_quarantine_sidecar, rotated_checkpoint_path, write_quarantine_sidecar, Checkpoint,
    QuarantineRecord, RunOutcome, RunSupervisor, SupervisorConfig,
};
use clrearly::core::CampaignPlan;
use clrearly::core::EvalCache;
use clrearly::markov::clr::{analyze_robust, ClrChainParams};
use proptest::prelude::*;

/// Rotation slots the fixture checkpoint keeps (primary + 2 rotations).
const KEEP: usize = 3;

/// The full `u64` seed space (the shim has no `any::<u64>()`).
fn arb_u64() -> std::ops::Range<u64> {
    0..u64::MAX
}

/// Printable-ASCII strings of up to `max` characters.
fn arb_printable(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"))
}

/// Non-empty strings over the genome rendering's alphabet.
fn arb_genome_text(max: usize) -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"0123456789:| ";
    prop::collection::vec(0usize..ALPHABET.len(), 1..max)
        .prop_map(|picks| picks.into_iter().map(|i| char::from(ALPHABET[i])).collect())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clre-chaos-prop-{}-{tag}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Bytes of a real interrupted run's checkpoint chain: `(primary, .1)`.
/// Produced once — every proptest case re-materialises fresh copies.
fn checkpoint_fixture() -> &'static (Vec<u8>, Vec<u8>) {
    static FIXTURE: OnceLock<(Vec<u8>, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = scratch("fixture");
        let ckpt = dir.join("fixture.ckpt");
        let platform = apps::paper_platform();
        let graph = apps::sobel(&platform, 42).expect("sobel app");
        let dse = ClrEarly::new(&graph, &platform).expect("tDSE succeeds");
        let sup = RunSupervisor::new(
            SupervisorConfig::new(&ckpt)
                .with_interval(1)
                .with_keep_checkpoints(KEEP),
        )
        .with_interrupt_at(0, 3);
        match dse
            .run_supervised(&CampaignPlan::fc(), &StageBudget::smoke_test(), &sup)
            .expect("interrupted run checkpoints")
        {
            RunOutcome::Interrupted { .. } => {}
            RunOutcome::Complete(_) => panic!("interrupt seam must fire"),
        }
        let primary = fs::read(&ckpt).expect("primary checkpoint");
        let rotation = fs::read(rotated_checkpoint_path(&ckpt, 1)).expect("rotation slot");
        let _ = fs::remove_dir_all(&dir);
        (primary, rotation)
    })
}

/// Bytes of a warm evaluation-cache sidecar with a handful of analyses.
fn cache_fixture() -> &'static Vec<u8> {
    static FIXTURE: OnceLock<Vec<u8>> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dir = scratch("cache-fixture");
        let path = dir.join("cache.txt");
        let cache = EvalCache::new();
        cache.bind_sidecar(&path).expect("bind fresh sidecar");
        for i in 0..6u32 {
            let params = ClrChainParams {
                exec_time: 1.0e-4 * f64::from(i + 1),
                seu_rate: 100.0,
                m_hw: 0.3,
                m_impl_ssw: 0.1,
                cov_det: 0.5,
                m_tol: 0.2,
                m_asw: 0.4,
                intervals: 1,
                t_det: 1.0e-6,
                t_tol: 2.0e-6,
                t_chk: 0.0,
                p_chk_err: 0.0,
            };
            cache.insert_analysis(&params, analyze_robust(&params).expect("analysis"));
        }
        let bytes = fs::read(&path).expect("warm sidecar");
        let _ = fs::remove_dir_all(&dir);
        assert!(!bytes.is_empty(), "fixture sidecar must have records");
        bytes
    })
}

/// Lays the fixture chain down fresh and returns the primary path.
fn materialize_chain(tag: &str) -> PathBuf {
    let (primary, rotation) = checkpoint_fixture();
    let dir = scratch(tag);
    let ckpt = dir.join("case.ckpt");
    fs::write(&ckpt, primary).expect("write primary");
    fs::write(rotated_checkpoint_path(&ckpt, 1), rotation).expect("write rotation");
    ckpt
}

/// The recovered checkpoint must be bit-equivalent to a slot of the
/// undamaged chain — damage never invents a third state.
fn assert_recovered_from_chain(cp: &Checkpoint) {
    let (primary, rotation) = checkpoint_fixture();
    let encoded = cp.encode().into_bytes();
    assert!(
        encoded == *primary || encoded == *rotation,
        "recovered checkpoint matches no slot of the original chain"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seeded byte damage to the primary checkpoint: loading alone never
    /// panics, and the rotation fallback always recovers a bit-exact
    /// slot of the original chain.
    #[test]
    fn damaged_checkpoint_falls_back_to_rotation(seed in arb_u64(), salt in arb_u64()) {
        let ckpt = materialize_chain("damage");
        corrupt_file(&ckpt, seed, salt).expect("corruptible");
        // Plain load: Ok or a typed error — either is a defined outcome.
        let _ = Checkpoint::load(&ckpt);
        let (cp, skipped) = Checkpoint::load_with_fallback(&ckpt, KEEP)
            .expect("fallback chain recovers");
        prop_assert!(skipped <= 1, "one damaged slot skips at most once");
        assert_recovered_from_chain(&cp);
        let _ = fs::remove_dir_all(ckpt.parent().unwrap());
    }

    /// Arbitrary truncation (including to zero bytes) degrades the same
    /// way: never a panic, always a valid slot via the fallback chain.
    #[test]
    fn truncated_checkpoint_falls_back_to_rotation(frac in 0.0..1.0f64) {
        let ckpt = materialize_chain("truncate");
        let bytes = fs::read(&ckpt).expect("read primary");
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let keep = ((bytes.len() as f64) * frac) as usize;
        fs::write(&ckpt, &bytes[..keep.min(bytes.len() - 1)]).expect("truncate");
        let _ = Checkpoint::load(&ckpt);
        let (cp, _) = Checkpoint::load_with_fallback(&ckpt, KEEP)
            .expect("fallback chain recovers");
        assert_recovered_from_chain(&cp);
        let _ = fs::remove_dir_all(ckpt.parent().unwrap());
    }

    /// Seeded byte damage to a warm cache sidecar: binding a fresh cache
    /// to it either skips the damaged tail (partial warm-start) or fails
    /// with a typed error (cold start) — never a panic, and never more
    /// entries than the undamaged sidecar held.
    #[test]
    fn damaged_cache_sidecar_degrades_to_partial_or_cold(seed in arb_u64(), salt in arb_u64()) {
        let dir = scratch("cache-damage");
        let path = dir.join("cache.txt");
        fs::write(&path, cache_fixture()).expect("write sidecar");
        corrupt_file(&path, seed, salt).expect("corruptible");
        let cache = EvalCache::new();
        if cache.bind_sidecar(&path).is_ok() {
            prop_assert!(cache.analysis_len() <= 6, "damage cannot add entries");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Entirely arbitrary bytes as a quarantine sidecar: reading never
    /// panics; every line is either parsed or counted as skipped.
    #[test]
    fn arbitrary_quarantine_bytes_never_panic(bytes in prop::collection::vec(0u8..255, 0..512)) {
        let dir = scratch("quarantine-bytes");
        let path = dir.join("quarantine.txt");
        fs::write(&path, &bytes).expect("write bytes");
        if let Ok((records, skipped)) = read_quarantine_sidecar(&path) {
            let lines = String::from_utf8_lossy(&bytes)
                .lines()
                .filter(|l| !l.trim().is_empty())
                .count();
            prop_assert!(records.len() + skipped <= lines);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Valid records survive bit-exactly no matter how many torn lines
    /// surround them, and every torn line is counted.
    #[test]
    fn quarantine_records_survive_torn_neighbours(
        records in prop::collection::vec((arb_printable(24), arb_genome_text(24)), 1..5),
        torn in prop::collection::vec(arb_printable(32).prop_map(|s| format!("@@{s}")), 0..5),
    ) {
        let dir = scratch("quarantine-torn");
        let path = dir.join("quarantine.txt");
        let records: Vec<QuarantineRecord> = records
            .into_iter()
            .map(|(error, genome)| QuarantineRecord { error, genome })
            .collect();
        write_quarantine_sidecar(&path, &records).expect("write sidecar");
        let mut text = fs::read_to_string(&path).expect("read back");
        for line in &torn {
            text.push_str(line);
            text.push('\n');
        }
        fs::write(&path, text).expect("write torn");
        let (parsed, skipped) = read_quarantine_sidecar(&path).expect("read survives");
        prop_assert_eq!(parsed, records);
        prop_assert_eq!(skipped, torn.len());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A truncated quarantine sidecar yields a prefix of the original
    /// records: at most the cut line is lost (or mangled), and a
    /// malformed cut is counted as skipped.
    #[test]
    fn truncated_quarantine_keeps_the_prefix(frac in 0.0..1.0f64) {
        let dir = scratch("quarantine-truncate");
        let path = dir.join("quarantine.txt");
        let records: Vec<QuarantineRecord> = (0..4)
            .map(|i| QuarantineRecord {
                error: format!("boom {i}"),
                genome: format!("2 0:1:{i} 1:0:0"),
            })
            .collect();
        write_quarantine_sidecar(&path, &records).expect("write sidecar");
        let bytes = fs::read(&path).expect("read back");
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let keep = ((bytes.len() as f64) * frac) as usize;
        fs::write(&path, &bytes[..keep.min(bytes.len())]).expect("truncate");
        let (parsed, skipped) = read_quarantine_sidecar(&path).expect("read survives");
        prop_assert!(parsed.len() <= records.len());
        prop_assert!(skipped <= 1, "only the cut line may be malformed");
        // Every record but the cut one survives bit-exactly, in order.
        let intact = parsed.len().saturating_sub(1);
        prop_assert_eq!(&parsed[..intact], &records[..intact]);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! forward-looking decoration — nothing links a serde data format, and the
//! sibling `serde` shim blanket-implements its marker traits for every
//! type. These derives therefore only need to *accept* the annotation (and
//! any `#[serde(...)]` attributes) and emit nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `rand` crate, implementing exactly the API
//! subset the CL(R)Early workspace uses: [`RngCore`], [`Rng`] with
//! `gen_range`/`gen_bool`, [`SeedableRng`] with `seed_from_u64`, and
//! [`rngs::StdRng`].
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` crate cannot be fetched; this crate keeps the public
//! surface source-compatible. [`rngs::StdRng`] is a xoshiro256\*\*
//! generator seeded through SplitMix64 — statistically strong enough for
//! the workspace's evolutionary searches and Monte-Carlo validation, and
//! deterministic per seed (equal seeds give equal streams, which the
//! checkpoint/resume machinery in `clre` relies on).
//!
//! Beyond the `rand 0.8` surface, [`rngs::StdRng`] exposes
//! [`rngs::StdRng::state_words`] and [`rngs::StdRng::from_state_words`]
//! so mid-stream generator state can be captured into run checkpoints and
//! restored exactly on resume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// exactly like `rand 0.8` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, v) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step: advances `state` and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits give the full double mantissa resolution.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample a single uniform value from itself.
pub trait SampleRange<T> {
    /// Samples one value using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo + sample_below(rng, span as u64) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + sample_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Uniform draw from `[0, span)` (`span == 0` means the full 64-bit
/// domain) via Lemire's widening-multiply reduction.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Rounding can land exactly on `end`; keep half-open.
                if v < self.end { v } else { self.start }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generator types.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// Not the ChaCha-based `StdRng` of the real `rand` crate, but a
    /// drop-in for every use in this workspace: deterministic per seed
    /// with high statistical quality.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Captures the raw generator state (checkpointing seam).
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }

        /// Restores a generator captured with [`StdRng::state_words`].
        pub fn from_state_words(s: [u64; 4]) -> Self {
            let mut rng = StdRng { s };
            if rng.s == [0; 4] {
                // The all-zero state is a fixed point; reseed it.
                rng = StdRng::seed_from_u64(0);
            }
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64();
                for (b, v) in chunk.iter_mut().zip(x.to_le_bytes()) {
                    *b = v;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // Avoid the degenerate all-zero cycle.
                let mut st = 0xDEAD_BEEF_u64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            a.next_u64();
        }
        let mut b = StdRng::from_state_words(a.state_words());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = rng.gen_range(-10..-2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn range_values_cover_domain() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw missed a bucket");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn dyn_rng_core_usable() {
        // The workspace passes `&mut dyn RngCore` everywhere.
        let mut rng = StdRng::seed_from_u64(9);
        let dynr: &mut dyn RngCore = &mut rng;
        let x = dynr.gen_range(0..10usize);
        assert!(x < 10);
        let _ = dynr.gen_bool(0.5);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Offline stand-in for `proptest`.
//!
//! The build environment cannot fetch crates, so this crate re-implements
//! the slice of the proptest API the workspace tests use: the [`Strategy`]
//! trait with `prop_map`, range/tuple/collection/bool strategies, a
//! [`ProptestConfig`] with a case count, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: case generation is a deterministic function of the test body's
//! source location and the case index, so failures reproduce on every run
//! by construction. `*.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from a per-test salt and case index.
    pub fn for_case(salt: u64, case: u32) -> Self {
        let mut rng = TestRng {
            state: salt ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        // Warm up so near-identical seeds diverge immediately.
        rng.next_u64();
        rng
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values (no shrinking in this stand-in).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from
    /// it — the dependent-strategy combinator (e.g. "a vector, then a
    /// second vector of the same length").
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A type-erased strategy arm inside a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice among heterogeneous strategies sharing a value type;
/// built by the [`prop_oneof!`] macro.
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// A union over the given (boxed, type-erased) arms; must be
    /// non-empty.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

/// Picks one of the given strategies uniformly per case, like real
/// proptest's `prop_oneof!` (per-arm weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $({
                let s = $strat;
                Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::generate(&s, rng)
                }) as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    }};
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Number of elements a collection strategy may produce (half-open).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical unconstrained strategy, backing
/// [`prelude::any`].
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-width strategy behind `any::<T>()` for primitive types.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = bool::Any;

    fn arbitrary() -> Self::Strategy {
        bool::ANY
    }
}

/// Runner configuration: only the case count is honoured here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Default configuration with `cases` test cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a hash of a string; salts per-test RNG streams by source location.
pub fn location_salt(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// `any::<T>()` for the handful of types the workspace draws
    /// unconstrained: full-range integers.
    pub fn any<T: crate::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Namespace alias matching real proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (a subset of real proptest's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0u8..3, 1..25)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let salt = $crate::location_salt(concat!(
                    file!(), "::", stringify!($name)
                ));
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(salt, case);
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn int_range_respects_bounds() {
        let strat = 3u32..17;
        for case in 0..500 {
            let mut rng = crate::TestRng::for_case(1, case);
            let v = Strategy::generate(&strat, &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let strat = -2.5..4.0f64;
        for case in 0..500 {
            let mut rng = crate::TestRng::for_case(2, case);
            let v = Strategy::generate(&strat, &mut rng);
            assert!((-2.5..4.0).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let strat = prop::collection::vec(0u8..3, 1..25);
        let fixed = prop::collection::vec(0u8..3, 4usize);
        for case in 0..200 {
            let mut rng = crate::TestRng::for_case(3, case);
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..25).contains(&v.len()));
            let f = Strategy::generate(&fixed, &mut rng);
            assert_eq!(f.len(), 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, 0.0..1.0f64, prop::bool::ANY);
        let mut a = crate::TestRng::for_case(9, 42);
        let mut b = crate::TestRng::for_case(9, 42);
        assert_eq!(
            Strategy::generate(&strat, &mut a),
            Strategy::generate(&strat, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_args(x in 0u32..10, flip in prop::bool::ANY) {
            prop_assert!(x < 10);
            prop_assert_eq!(flip as u32 <= 1, true);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(pair in (1u8..5, 1u8..5).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..10).contains(&pair));
        }
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment cannot fetch crates, and the workspace only uses
//! serde as derive decoration (no data format is linked, and run
//! checkpoints use the hand-rolled codec in `clre::resilience`). This shim
//! keeps `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` compiling: the traits are markers
//! blanket-implemented for every type, and the derives are no-ops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::{Deserialize, Serialize};

    #[derive(serde_derive::Serialize, serde_derive::Deserialize)]
    #[allow(dead_code)]
    struct Point {
        #[serde(default)]
        x: f64,
        y: f64,
    }

    #[derive(serde_derive::Serialize, serde_derive::Deserialize)]
    #[allow(dead_code)]
    enum Shape {
        Dot,
        Line(Point, Point),
        Poly { corners: Vec<Point> },
    }

    fn assert_markers<T: super::Serialize + for<'de> super::Deserialize<'de>>() {}

    #[test]
    fn derives_compile_and_traits_blanket() {
        assert_markers::<Point>();
        assert_markers::<Shape>();
        assert_markers::<Vec<String>>();
    }
}

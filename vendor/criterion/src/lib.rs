//! Offline stand-in for `criterion`.
//!
//! The build environment cannot fetch crates, so this crate provides the
//! slice of the criterion API the workspace benches use, backed by a
//! minimal wall-clock harness: each benchmark runs `sample_size`
//! iterations and reports the mean time per iteration to stdout. There is
//! no statistical analysis, warm-up, or HTML report; the point is that
//! `cargo bench` compiles, runs, and prints plausible numbers offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; carried for API fidelity only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; setup runs once per iteration here.
    SmallInput,
    /// Large per-iteration inputs; treated identically to `SmallInput`.
    LargeInput,
    /// Per-iteration batch sizing; treated identically to `SmallInput`.
    PerIteration,
}

/// Runs one benchmark's iterations and accumulates measured time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup` value per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Benchmark registry and configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Set the number of iterations measured per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Measure `routine` and print the mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let per_iter = if bencher.iterations > 0 {
            bencher.elapsed / bencher.iterations as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{id:<48} {:>12.3} us/iter ({} iters)",
            per_iter.as_secs_f64() * 1e6,
            bencher.iterations
        );
        self
    }
}

/// Bundle benchmark functions under a group function, mirroring
/// criterion's `criterion_group!` (both the plain and `name =`/`config =`
/// forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_to_100", |b| b.iter(|| (0u64..100).sum::<u64>()));
        c.bench_function("batched_reverse", |b| {
            b.iter_batched(
                || vec![1u32, 2, 3, 4],
                |mut v| {
                    v.reverse();
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = tiny_bench
    }

    criterion_group!(plain_form, tiny_bench);

    #[test]
    fn groups_run() {
        benches();
        plain_form();
    }
}

//! Building a custom platform and application from scratch with the
//! builder APIs, then running a *constrained* DSE (Equation 5's SPEC
//! bounds): only mappings meeting a makespan budget and a reliability
//! floor survive.
//!
//! ```sh
//! cargo run --release --example custom_platform
//! ```

use clrearly::core::methodology::{ClrEarly, StageBudget};
use clrearly::core::tdse::TdseConfig;
use clrearly::core::CampaignPlan;
use clrearly::model::application::SysSw;
use clrearly::model::qos::QosSpec;
use clrearly::model::{BaseImpl, DvfsMode, PeType, PeTypeId, Platform, TaskGraph, TaskType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small automotive-style ECU: two lockstep-capable cores and one
    // accelerator region.
    let core = PeType::processor("lockstep-core", 2.1, 0.35)
        .with_dvfs_mode(DvfsMode::new("1.1V/800MHz", 1.1, 800.0e6))
        .with_dvfs_mode(DvfsMode::new("0.95V/400MHz", 0.95, 400.0e6));
    let accel = PeType::reconfigurable_region("fpga-region", 1.7, 0.12)
        .with_dvfs_mode(DvfsMode::new("0.9V/200MHz", 0.9, 200.0e6));
    let platform = Platform::builder()
        .pe_type(core)
        .pe_type(accel)
        .pes_of_type("lockstep-core", 2)?
        .pes_of_type("fpga-region", 1)?
        .build()?;

    // A sensor-fusion pipeline: filter → fuse → {plan, log}.
    let core_ty = PeTypeId::new(0);
    let accel_ty = PeTypeId::new(1);
    let filter = TaskType::new("filter")
        .with_impl(BaseImpl::new("filter-c", core_ty, 2.2e5, 0.9e-9).with_sys_sw(SysSw::Rtos))
        .with_impl(BaseImpl::new("filter-hls", accel_ty, 0.8e5, 1.6e-9));
    let fuse = TaskType::new("fuse")
        .with_impl(BaseImpl::new("fuse-c", core_ty, 4.0e5, 1.1e-9).with_sys_sw(SysSw::Rtos));
    let plan = TaskType::new("plan").with_impl(BaseImpl::new("plan-c", core_ty, 3.1e5, 1.0e-9));
    let log = TaskType::new("log").with_impl(BaseImpl::new("log-c", core_ty, 0.6e5, 0.7e-9));
    let graph = TaskGraph::builder("sensor-fusion", 5.0e-3)
        .task_type(filter)
        .task_type(fuse)
        .task_type(plan)
        .task_type(log)
        .task("filter", "filter")?
        .task_with_criticality("fuse", "fuse", 3.0)?
        .task_with_criticality("plan", "plan", 3.0)?
        .task("log", "log")?
        .edge(0, 1)
        .edge(1, 2)
        .edge(1, 3)
        .build()?;

    // QoS specification: finish within 2.5 ms on average, at least 99%
    // functional reliability per iteration.
    let spec = QosSpec::new()
        .with_max_makespan(2.5e-3)
        .with_min_reliability(0.99);
    let dse = ClrEarly::with_tdse_config(&graph, &platform, TdseConfig::new())?.with_spec(spec);
    let result = dse.run(
        &CampaignPlan::proposed(),
        &StageBudget::new(32, 40).with_seed(3),
    )?;

    println!(
        "{} feasible Pareto points under S ≤ 2.5 ms, F ≥ 0.99:",
        result.front().len()
    );
    for p in result.front() {
        let m = p.metrics;
        println!(
            "  makespan {:.3} ms, reliability {:.4}, MTTF {:.1} h, peak {:.2} W",
            m.makespan * 1.0e3,
            1.0 - m.error_prob,
            m.mttf / 3600.0,
            m.peak_power
        );
        assert!(m.makespan <= 2.5e-3 && m.error_prob <= 0.01);
    }
    Ok(())
}

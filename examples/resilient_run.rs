//! Resilient run: the proposed methodology under a [`RunSupervisor`] —
//! periodic GA checkpoints, a simulated mid-run crash, and a
//! deterministic resume to the identical Pareto front.
//!
//! ```sh
//! cargo run --release --example resilient_run
//! ```
//!
//! [`RunSupervisor`]: clrearly::core::RunSupervisor

use clrearly::core::apps;
use clrearly::core::methodology::{ClrEarly, StageBudget};
use clrearly::core::CampaignPlan;
use clrearly::core::{RunOutcome, RunSupervisor, SupervisorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = apps::paper_platform();
    let graph = apps::sobel(&platform, 42)?;
    let dse = ClrEarly::new(&graph, &platform)?;
    let budget = StageBudget::new(40, 40).with_seed(7);

    let checkpoint = std::env::temp_dir().join("clrearly-resilient-run.ckpt");
    let config = SupervisorConfig::new(&checkpoint).with_interval(5);

    // 1. Reference: an uninterrupted supervised run. Evaluation failures
    //    (panics, typed errors, non-finite fitness) are isolated and
    //    quarantined instead of tearing down the search, and the GA
    //    state is checkpointed every 5 generations.
    let reference = dse
        .run_supervised(
            &CampaignPlan::proposed(),
            &budget,
            &RunSupervisor::new(config.clone()),
        )?
        .expect_complete();
    println!(
        "uninterrupted: {} Pareto points after {} evaluations",
        reference.front().len(),
        reference.evaluations
    );
    println!("  health: {:?}", reference.health);

    // 2. Crash injection: the supervisor's test seam kills the run at
    //    generation 20 of the fc stage (stage 1). A real deployment
    //    would lose the process here — the checkpoint file survives.
    let crashing = RunSupervisor::new(config.clone()).with_interrupt_at(1, 20);
    match dse.run_supervised(&CampaignPlan::proposed(), &budget, &crashing)? {
        RunOutcome::Interrupted { stage, generation } => {
            println!("\nsimulated crash at stage {stage}, generation {generation}");
        }
        RunOutcome::Complete(_) => unreachable!("the crash seam fired"),
    }

    // 3. Resume: a fresh supervisor (fresh process, in a real
    //    deployment) picks the run back up from the checkpoint. The
    //    checkpoint restores the exact population, RNG state and stage
    //    bookkeeping, so the resumed run replays the uninterrupted
    //    trajectory bit-for-bit.
    let resumed = dse
        .resume_supervised(&budget, &RunSupervisor::new(config))?
        .expect_complete();
    println!(
        "resumed:       {} Pareto points after {} evaluations",
        resumed.front().len(),
        resumed.evaluations
    );
    println!("  health: {:?}", resumed.health);

    let identical = reference.front() == resumed.front();
    println!("\nfronts identical after resume: {identical}");
    assert!(identical, "resume must reproduce the uninterrupted front");
    Ok(())
}

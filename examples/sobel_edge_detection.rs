//! Full Sobel Edge Detection case study (Fig. 2(b) + Table IV):
//!
//! 1. task-level DSE under the six Table IV objective sets, reporting the
//!    Pareto library size of every task type;
//! 2. system-level comparison of all four search methods (fcCLR, pfCLR,
//!    proposed, Agnostic) with hypervolume scores.
//!
//! ```sh
//! cargo run --release --example sobel_edge_detection
//! ```

use clrearly::core::apps;
use clrearly::core::methodology::{reference_point, ClrEarly, FrontResult, StageBudget};
use clrearly::core::tdse::{build_library, TdseConfig};
use clrearly::core::CampaignPlan;
use clrearly::model::qos::ObjectiveSet;
use clrearly::model::TaskTypeId;
use clrearly::moea::hypervolume::hypervolume;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = apps::sobel_platform();
    let graph = apps::sobel(&platform, 42)?;

    println!("== task-level DSE (Table IV) ==");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "objectives", "GScale", "GSmth", "SobGrad", "CombThr"
    );
    let sets: [(&str, ObjectiveSet); 6] = [
        ("I  time", ObjectiveSet::set_i()),
        ("II +err", ObjectiveSet::set_ii()),
        ("III +mttf", ObjectiveSet::set_iii()),
        ("IV +energy", ObjectiveSet::set_iv()),
        ("V  +power", ObjectiveSet::set_v()),
        ("VI +temp", ObjectiveSet::set_vi()),
    ];
    for (label, objs) in sets {
        let lib = build_library(&graph, &platform, &TdseConfig::new().with_objectives(objs))?;
        print!("{label:<16}");
        for ty in 0..4 {
            print!(" {:>8}", lib.pareto_count(TaskTypeId::new(ty)));
        }
        println!();
    }

    println!("\n== system-level DSE ==");
    let dse = ClrEarly::new(&graph, &platform)?;
    let budget = StageBudget::new(40, 40).with_seed(9);
    let runs: Vec<FrontResult> = vec![
        dse.run(&CampaignPlan::fc(), &budget)?,
        dse.run(&CampaignPlan::pf(), &budget)?,
        dse.run(&CampaignPlan::proposed(), &budget)?,
        dse.run(&CampaignPlan::agnostic(), &budget)?,
    ];
    let fronts: Vec<Vec<Vec<f64>>> = runs.iter().map(FrontResult::objectives).collect();
    let reference = reference_point(fronts.iter().map(|f| f.as_slice()));
    println!(
        "{:<10} {:>8} {:>14} {:>12}",
        "method", "points", "evaluations", "hypervolume"
    );
    for (run, front) in runs.iter().zip(&fronts) {
        println!(
            "{:<10} {:>8} {:>14} {:>12.4e}",
            run.method(),
            run.front().len(),
            run.evaluations,
            hypervolume(front, &reference)
        );
    }
    Ok(())
}

//! Worker-count invariance demo: runs the proposed two-stage flow on one
//! synthetic application once per requested worker-pool size, printing
//! wall-clock time, the evaluation totals from the telemetry trace and a
//! digest of the final front. The digests must agree for every pool size
//! — parallelism is purely a wall-clock knob.
//!
//! ```sh
//! cargo run --release --example parallel_sweep -- 100 32 24 1 4
//! #                                  tasks ──────┘   │  │  └┴─ worker counts
//! #                                  population ─────┘  └──── generations
//! ```

use std::time::Instant;

use clrearly::core::apps;
use clrearly::core::methodology::{ClrEarly, StageBudget};
use clrearly::core::CampaignPlan;
use clrearly::exec::{ExecPool, Executor, RunTelemetry};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let tasks = args.first().copied().unwrap_or(100);
    let population = args.get(1).copied().unwrap_or(32);
    let generations = args.get(2).copied().unwrap_or(24);
    let worker_counts = if args.len() > 3 { &args[3..] } else { &[1, 4] };

    let (platform, graph) = apps::synthetic_app(tasks, 7 + tasks as u64).expect("app builds");
    let budget = StageBudget::new(population, generations).with_seed(11);
    println!("tasks={tasks} population={population} generations={generations}");

    let mut digests = Vec::new();
    for &workers in worker_counts {
        let sink = RunTelemetry::sink();
        let dse = ClrEarly::new(&graph, &platform)
            .expect("tDSE succeeds")
            .with_executor(Executor::new(ExecPool::new(workers)).with_telemetry(sink.clone()));
        let t0 = Instant::now();
        let front = dse
            .run(&CampaignPlan::proposed(), &budget)
            .expect("proposed runs");
        let wall = t0.elapsed();

        // Order-sensitive FNV-1a over genomes and objective bits: equal
        // digests mean bit-identical fronts.
        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u64| {
            digest ^= byte;
            digest = digest.wrapping_mul(0x1_0000_01b3);
        };
        for point in front.front() {
            for gene in &point.genome {
                mix(gene.task.index() as u64);
                mix(gene.pe.index() as u64);
                mix(u64::from(gene.choice));
            }
            for objective in &point.objectives {
                mix(objective.to_bits());
            }
        }
        let telemetry = sink.lock().expect("sink poisoned");
        println!(
            "workers={workers} wall={:.2}s evaluations={} batches={} front={} digest={digest:016x}",
            wall.as_secs_f64(),
            telemetry.total_evaluations(),
            telemetry.records().len(),
            front.front().len(),
        );
        digests.push(digest);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "fronts diverged across worker counts: {digests:x?}"
    );
    println!(
        "all {} worker counts produced bit-identical fronts",
        digests.len()
    );
}

//! Campaign-as-a-service round trip: stands up an in-process
//! `clre-serve` server on an ephemeral port, submits a campaign over the
//! wire, prints the live per-generation trace stream, and checks the
//! streamed front digest against the same campaign run in-process — the
//! server's determinism contract.
//!
//! ```sh
//! cargo run --release --example serve_roundtrip -- 20 16 8
//! #                                     tasks ────┘   │  └─ generations
//! #                                     population ───┘
//! ```

use clrearly::core::methodology::{ClrEarly, StageBudget};
use clrearly::core::CampaignPlan;
use clrearly::serve::client::{Event, ServeClient, Submission};
use clrearly::serve::server::{build_app, front_digest, ServeConfig, Server};
use clrearly::serve::wire::{AppSpec, SubmitRequest};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let tasks = args.first().copied().unwrap_or(20);
    let population = args.get(1).copied().unwrap_or(16);
    let generations = args.get(2).copied().unwrap_or(8);

    let request = SubmitRequest {
        tenant: "demo".to_owned(),
        app: AppSpec::Synthetic {
            tasks,
            seed: 7 + tasks as u64,
        },
        budget: StageBudget::new(population, generations).with_seed(11),
        plan: CampaignPlan::proposed(),
        scenario: clrearly::core::Scenario::Transient,
    };

    // The server: own thread, ephemeral port, throw-away state dir.
    let root = std::env::temp_dir().join(format!("clre-serve-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = Server::bind("127.0.0.1:0", ServeConfig::new(&root).with_workers(2))
        .expect("bind ephemeral");
    let addr = server.local_addr().expect("local addr").to_string();
    let stop = server.stop_flag();
    let server_thread = std::thread::spawn(move || server.run());
    println!("server listening on {addr}");

    // Submit over the wire and stream every generation as it lands.
    let mut client = ServeClient::connect(&addr).expect("connect");
    let id = match client.submit(&request).expect("submit") {
        Submission::Accepted { id } => id,
        Submission::Rejected { reason, detail } => panic!("rejected: {reason} {detail}"),
    };
    println!("accepted id={id}");
    let summary = loop {
        match client.next_event().expect("event") {
            Event::Trace(line) => println!("  {line}"),
            Event::Done(summary) => break summary,
            other => panic!("campaign did not complete: {other:?}"),
        }
    };
    println!(
        "server: digest={:016x} points={} evaluations={}",
        summary.digest, summary.points, summary.evaluations
    );

    // The determinism contract: the identical campaign in-process
    // (serial, uncached) must produce the same front digest.
    let (platform, graph) = build_app(&request.app).expect("app builds");
    let local = ClrEarly::new(&graph, &platform)
        .expect("tDSE succeeds")
        .run(&request.plan, &request.budget)
        .expect("in-process campaign completes");
    let local_digest = front_digest(&local);
    println!("local:  digest={local_digest:016x}");
    assert_eq!(
        summary.digest, local_digest,
        "server and in-process fronts diverge"
    );
    println!("digests identical — the server changes where campaigns run, never what they return");

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    server_thread.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&root);
}

//! Pick one Pareto-optimal mapping from the DSE, draw its Gantt chart,
//! then *validate* its analytical QoS prediction by Monte-Carlo fault
//! injection: tens of thousands of simulated application iterations with
//! stochastically injected single-event upsets.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use clrearly::core::apps;
use clrearly::core::encoding::{ChoiceMode, Codec};
use clrearly::core::tdse::{build_library, chain_params, TdseConfig};
use clrearly::model::TaskTypeId;
use clrearly::profile::ProfileModel;
use clrearly::sched::{render_gantt, utilization, QosEvaluator};
use clrearly::sim::AppSimulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A uniform-criticality application: with uniform ζ the analytical
    // series-system error probability is exactly the probability that
    // *any* task errs, which is what fault injection measures. (With
    // skewed criticalities — e.g. the Sobel app — the analytical figure
    // is a design-priority-weighted quantity, not a physical rate.)
    let (platform, graph) = apps::synthetic_app(10, 5)?;
    let profile = ProfileModel::default();
    let library = build_library(&graph, &platform, &TdseConfig::new())?;
    let codec = Codec::new(&graph, &platform, &library, ChoiceMode::ParetoFiltered)?;

    // A reproducible candidate mapping (in a real flow this would come
    // out of the proposed campaign; a random point keeps the example
    // fast and still exercises the whole validation path).
    let mut rng = StdRng::seed_from_u64(7);
    let genome = codec.random_genome(&mut rng);
    let mapping = codec.decode(&genome);

    let evaluator = QosEvaluator::new(&platform);
    let (analytic, schedule) = evaluator.evaluate_with_schedule(&graph, &mapping)?;

    println!("== schedule ==");
    print!("{}", render_gantt(&schedule, &platform, 60));
    let util = utilization(&schedule, &platform);
    println!(
        "utilization: {}\n",
        util.iter()
            .enumerate()
            .map(|(pe, u)| format!("PE{pe}={:.0}%", u * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    );

    // Reconstruct each task's Markov-chain parameters from its chosen
    // candidate and fault-inject against the same semantics.
    let mut task_params = Vec::new();
    for gene in &genome {
        let ty: TaskTypeId = graph.tasks()[gene.task.index()].task_type();
        let cand = library.candidate(ty, gene.choice as usize);
        let imp = graph
            .task_type(ty)
            .and_then(|t| t.impl_by_id(cand.impl_id))
            .expect("candidate references a valid implementation");
        let pe_type = platform
            .pe_type(cand.pe_type)
            .expect("candidate references a valid PE type");
        let mode = pe_type
            .dvfs_mode(cand.dvfs)
            .expect("candidate references a valid DVFS mode");
        task_params.push((
            gene.task,
            chain_params(imp, pe_type, mode, &cand.clr, &profile, None),
        ));
    }
    task_params.sort_by_key(|(t, _)| t.index());
    let params: Vec<_> = task_params.into_iter().map(|(_, p)| p).collect();

    let sim = AppSimulator::new(&graph, &platform, &mapping, params);
    let empirical = sim.run(50_000, 99);

    println!("== analytical vs fault injection (50k iterations) ==");
    println!("{:<22} {:>14} {:>14}", "metric", "analytical", "empirical");
    println!(
        "{:<22} {:>14.6e} {:>14.6e}",
        "app error probability", analytic.error_prob, empirical.error_rate
    );
    println!(
        "{:<22} {:>14.6e} {:>14.6e}",
        "makespan mean [s]", analytic.makespan, empirical.mean_makespan
    );
    println!(
        "{:<22} {:>14} {:>14.6e}",
        "makespan max [s]", "-", empirical.max_makespan
    );
    let err_gap = (empirical.error_rate - analytic.error_prob).abs();
    assert!(
        err_gap < 0.01,
        "fault injection disagrees with the analysis by {err_gap}"
    );
    println!("\nanalysis validated: error gap {err_gap:.2e}");
    Ok(())
}

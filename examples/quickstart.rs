//! Quickstart: run the full CL(R)Early flow on the Sobel Edge Detection
//! case study and print the resulting Pareto front.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clrearly::core::apps;
use clrearly::core::methodology::{ClrEarly, StageBudget};
use clrearly::core::CampaignPlan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The evaluation platform: 6 PEs of 3 types (Fig. 2(a)).
    let platform = apps::paper_platform();
    // 2. The application: Sobel Edge Detection, 5 tasks / 4 types (Fig. 2(b)).
    let graph = apps::sobel(&platform, 42)?;
    println!(
        "application: {} ({} tasks, {} types, {} edges)",
        graph.name(),
        graph.task_count(),
        graph.task_types().len(),
        graph.edges().len()
    );

    // 3. Task-level DSE runs at construction: every (implementation, DVFS
    //    mode, CLR configuration) point is analyzed through the Markov
    //    chains and Pareto-filtered per PE type.
    let dse = ClrEarly::new(&graph, &platform)?;
    for (ty_idx, ty) in graph.task_types().iter().enumerate() {
        let id = clrearly::model::TaskTypeId::new(ty_idx as u32);
        println!(
            "  {}: {} candidates, {} on the task-level Pareto front",
            ty.name(),
            dse.library().full_count(id),
            dse.library().pareto_count(id),
        );
    }

    // 4. System-level DSE: the proposed two-stage pfCLR→fcCLR search,
    //    expressed as a campaign stage graph (a Pareto-filtered stage
    //    seeding a full-space stage, fronts merged). `CampaignPlan::proposed()` is the
    //    thin wrapper over exactly this plan.
    let budget = StageBudget::new(40, 40).with_seed(7);
    let result = dse.run(&CampaignPlan::proposed(), &budget)?;
    println!(
        "\nproposed methodology: {} Pareto points after {} evaluations",
        result.front().len(),
        result.evaluations
    );
    println!(
        "{:<14} {:<12} {:<12} {:<12} {:<10}",
        "makespan[us]", "err-prob", "MTTF[h]", "energy[mJ]", "peak[W]"
    );
    let mut points = result.front().to_vec();
    points.sort_by(|a, b| {
        a.metrics
            .makespan
            .partial_cmp(&b.metrics.makespan)
            .expect("finite")
    });
    for p in points {
        let m = p.metrics;
        println!(
            "{:<14.1} {:<12.3e} {:<12.0} {:<12.3} {:<10.2}",
            m.makespan * 1.0e6,
            m.error_prob,
            m.mttf / 3600.0,
            m.energy * 1.0e3,
            m.peak_power
        );
    }
    Ok(())
}

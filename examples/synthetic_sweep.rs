//! Scaling study on synthetic TGFF-style applications: compares the
//! proposed two-stage methodology against fcCLR and pfCLR as the task
//! count grows (the Tables VI/VII regime at example scale).
//!
//! ```sh
//! cargo run --release --example synthetic_sweep
//! ```

use clrearly::core::apps;
use clrearly::core::methodology::{reference_point, ClrEarly, StageBudget};
use clrearly::core::CampaignPlan;
use clrearly::moea::hypervolume::{hypervolume, percent_increase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>16} {:>16}",
        "#tasks", "hv(fcCLR)", "hv(pfCLR)", "hv(prop)", "prop vs fc [%]", "prop vs pf [%]"
    );
    for tasks in [10usize, 20, 30] {
        let (platform, graph) = apps::synthetic_app(tasks, 100 + tasks as u64)?;
        let dse = ClrEarly::new(&graph, &platform)?;
        let budget = StageBudget::new(40, 40).with_seed(5);
        let fc = dse.run(&CampaignPlan::fc(), &budget)?.objectives();
        let pf = dse.run(&CampaignPlan::pf(), &budget)?.objectives();
        let prop = dse.run(&CampaignPlan::proposed(), &budget)?.objectives();
        let r = reference_point([fc.as_slice(), pf.as_slice(), prop.as_slice()]);
        let (hf, hp, hr) = (
            hypervolume(&fc, &r),
            hypervolume(&pf, &r),
            hypervolume(&prop, &r),
        );
        println!(
            "{tasks:<8} {hf:>12.4e} {hp:>12.4e} {hr:>12.4e} {:>16.1} {:>16.1}",
            percent_increase(hr, hf),
            percent_increase(hr, hp)
        );
    }
    Ok(())
}

//! Task-level DVFS/reliability trade-off exploration (the Fig. 6(a)
//! study): enumerate one task type's full candidate space and print the
//! Pareto front of every DVFS operating point.
//!
//! ```sh
//! cargo run --release --example dvfs_tradeoffs
//! ```

use clrearly::core::apps;
use clrearly::core::tdse::{candidates_for_type, TdseConfig};
use clrearly::model::{TaskGraph, TaskType, TaskTypeId};
use clrearly::moea::pareto::non_dominated_indices;
use clrearly::profile::SyntheticCharacterizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = apps::sobel_platform();
    let ch = SyntheticCharacterizer::new(42);
    let mut ty = TaskType::new("matmul");
    for imp in ch.impls_for_type(0, &platform) {
        ty = ty.with_impl(imp);
    }
    let graph = TaskGraph::builder("single", 10.0e-3)
        .task_type(ty)
        .task("t0", "matmul")?
        .build()?;

    let cands = candidates_for_type(&graph, &platform, TaskTypeId::new(0), &TdseConfig::new())?;
    let proc = platform
        .pe_type_by_name("embedded-proc")
        .expect("platform defines the processor type");
    let modes = platform
        .pe_type(proc)
        .expect("valid type id")
        .dvfs_modes()
        .to_vec();

    println!(
        "{} candidates across {} DVFS modes\n",
        cands.len(),
        modes.len()
    );
    for (mode_idx, mode) in modes.iter().enumerate() {
        let mode_cands: Vec<_> = cands
            .iter()
            .filter(|c| c.pe_type == proc && c.dvfs.index() == mode_idx)
            .collect();
        let points: Vec<Vec<f64>> = mode_cands
            .iter()
            .map(|c| vec![c.metrics.avg_exec_time, c.metrics.error_prob])
            .collect();
        let front = non_dominated_indices(&points);
        println!(
            "== {} : {} candidates, {} Pareto points ==",
            mode.name(),
            mode_cands.len(),
            front.len()
        );
        println!(
            "{:<14} {:<12} CLR configuration",
            "avg-time[us]", "err-prob[%]"
        );
        let mut rows: Vec<_> = front.iter().map(|&i| mode_cands[i]).collect();
        rows.sort_by(|a, b| {
            a.metrics
                .avg_exec_time
                .partial_cmp(&b.metrics.avg_exec_time)
                .expect("finite")
        });
        for c in rows {
            println!(
                "{:<14.1} {:<12.4} {}",
                c.metrics.avg_exec_time * 1.0e6,
                c.metrics.error_prob * 100.0,
                c.clr
            );
        }
        println!();
    }
    Ok(())
}
